"""Notification of disable status along concave sections.

After the boundary-ring walk has identified the notification end nodes, each
end node is in charge of notifying every node of its concave row/column
section that it must take the *disabled* status.  The notification message
advances one node per round along the section.  A concave section may be
partially covered by another faulty component or by that component's
polygon -- a *blocking polygon* -- in which case the message has to route
around the blocking polygon (Figure 7 of the paper): the nodes of the
section that belong to the blocking polygon get their status from that
polygon's own construction, and the detour costs extra rounds.

The planner below produces, for every concave section of a component, the
hop-by-hop notification path (including detours) and the resulting round
count.  Sections are notified concurrently, so the per-component
notification cost is the maximum path length over its sections.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.core.components import FaultComponent
from repro.distributed.ring import RingConstruction
from repro.geometry.sections import Section, concave_sections
from repro.types import Coord


@dataclass(frozen=True)
class SectionNotification:
    """The notification plan for a single concave section."""

    section: Section
    end_node: Coord
    path: Tuple[Coord, ...]
    notified: FrozenSet[Coord]
    skipped: FrozenSet[Coord]
    detected_by_ring: bool

    @property
    def rounds(self) -> int:
        """Rounds needed to deliver the notification along the whole path."""
        return len(self.path)

    @property
    def detoured(self) -> bool:
        """Whether the message had to route around a blocking polygon."""
        return len(self.path) > len(self.notified)


@dataclass
class NotificationPlan:
    """All section notifications of one component."""

    component: FaultComponent
    notifications: List[SectionNotification]

    @property
    def rounds(self) -> int:
        """Per-component notification rounds (sections proceed in parallel)."""
        if not self.notifications:
            return 0
        return max(entry.rounds for entry in self.notifications)

    @property
    def disabled_nodes(self) -> Set[Coord]:
        """Every node given the disabled status by this component's plan."""
        result: Set[Coord] = set()
        for entry in self.notifications:
            result.update(entry.notified)
        return result

    @property
    def total_messages(self) -> int:
        """Total message hops spent by all notifications of the component."""
        return sum(entry.rounds for entry in self.notifications)


def _detour_path(
    start: Coord,
    goal: Coord,
    blocked: Set[Coord],
    limit: int = 100_000,
) -> List[Coord]:
    """Shortest 4-neighbour path from *start* to *goal* avoiding *blocked*.

    Used to route a notification message around a blocking polygon.  The
    search runs on the unbounded grid (the blocking polygon is finite, so a
    path always exists) and returns the node sequence excluding *start* and
    including *goal*.
    """
    if start == goal:
        return []
    frontier = deque([start])
    came_from: Dict[Coord, Coord] = {start: start}
    visited = 0
    while frontier:
        current = frontier.popleft()
        visited += 1
        if visited > limit:  # pragma: no cover - defensive bound
            raise RuntimeError("detour search exceeded its node budget")
        x, y = current
        for neighbour in ((x, y + 1), (x + 1, y), (x, y - 1), (x - 1, y)):
            if neighbour in came_from or neighbour in blocked:
                continue
            came_from[neighbour] = current
            if neighbour == goal:
                path = [neighbour]
                node = current
                while node != start:
                    path.append(node)
                    node = came_from[node]
                path.reverse()
                return path
            frontier.append(neighbour)
    raise RuntimeError(f"no detour path from {start} to {goal}")  # pragma: no cover


def plan_section_notification(
    section: Section,
    end_node: Coord,
    blocking_nodes: Set[Coord],
    detected_by_ring: bool,
) -> SectionNotification:
    """Plan the notification of one concave section.

    The message starts at *end_node* and walks the section from the end
    nearest to it towards the far end.  ``blocking_nodes`` are the faulty
    nodes of the blocking polygons (other components overlapping the
    section): they are physically dead, so they cannot be notified (they are
    already black) and the message has to detour around them along live
    nodes.  Non-faulty nodes of a blocking polygon's concave fill are still
    traversed and coloured -- the paper's "determined multiple times" case
    of Figure 7.
    """
    cells = section.nodes()
    if not cells:
        raise ValueError("cannot notify an empty section")
    # Walk from the end of the section closest to the notification end node.
    first, last = cells[0], cells[-1]
    distance_first = abs(first[0] - end_node[0]) + abs(first[1] - end_node[1])
    distance_last = abs(last[0] - end_node[0]) + abs(last[1] - end_node[1])
    ordered = cells if distance_first <= distance_last else list(reversed(cells))

    path: List[Coord] = []
    notified: List[Coord] = []
    skipped: List[Coord] = []
    position = end_node
    for cell in ordered:
        if cell in blocking_nodes:
            skipped.append(cell)
            continue
        if cell == position:
            # The end node may itself be the first cell of the section.
            notified.append(cell)
            continue
        x, y = position
        if cell in ((x, y + 1), (x + 1, y), (x, y - 1), (x - 1, y)):
            path.append(cell)
        else:
            path.extend(_detour_path(position, cell, blocking_nodes))
        notified.append(cell)
        position = cell

    return SectionNotification(
        section=section,
        end_node=end_node,
        path=tuple(path),
        notified=frozenset(notified),
        skipped=frozenset(skipped),
        detected_by_ring=detected_by_ring,
    )


def plan_notifications(
    component: FaultComponent,
    ring: RingConstruction,
    blocking_faults: Iterable[Coord] = (),
) -> NotificationPlan:
    """Plan every section notification of one component.

    ``blocking_faults`` are the faulty nodes of *other* components; any of
    them lying on (or near) a concave section of this component belongs to a
    blocking polygon and forces a detour.

    Every Definition-3 concave section of the component is covered.  When
    the ring walk produced a notification end node for the section, that
    node is used; otherwise (the bookkeeping corner cases the paper defers
    to its skipped optimisation) the member node just past the section end
    closest to the ring initiator acts as the notifier.
    """
    blocking: Set[Coord] = set(blocking_faults) - set(component.nodes)

    notifications: List[SectionNotification] = []
    for section in concave_sections(component.nodes):
        detected_end = ring.notification_end_node(section)
        if detected_end is not None:
            end_node = detected_end
            detected = True
        else:
            end_node = section.end_nodes()[0]
            detected = False
        notifications.append(
            plan_section_notification(section, end_node, blocking, detected)
        )
    return NotificationPlan(component=component, notifications=notifications)
