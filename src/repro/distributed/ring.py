"""Boundary-ring construction for the distributed MFP solution.

Section 3.2 of the paper constructs, for every faulty component, a ring of
boundary nodes surrounding the component.  The west-most south-west corner
(inner or outer) wins the initiator election through the overwriting rule,
and its initiation message travels clockwise around the ring, one boundary
node per round.  The message piggybacks the *boundary array*
``V[1..n](E, S, W, N)``: one entry per row for the most recently visited
east and west boundary node, and one entry per column for the most recently
visited north and south boundary node.  While the message travels, a
boundary node recognises itself as the *notification end node* of a concave
row or column section by comparing its own position against the opposite
entry of the boundary array (step 1(b) of the distributed algorithm).

This module simulates the ring construction at the message level: the walk
order, the evolution of the boundary array, the detected notification end
nodes, and the number of rounds (one hop of the initiation message per
round).  The final node statuses themselves are produced by the
notification phase (:mod:`repro.distributed.notification`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.components import FaultComponent
from repro.geometry.boundary import boundary_nodes, boundary_ring, hole_rings
from repro.geometry.sections import Section
from repro.types import Coord, Side


@dataclass
class BoundaryArray:
    """The ``V[1..n](E, S, W, N)`` array piggybacked on the initiation message.

    ``east[y]`` / ``west[y]`` store the column of the most recently visited
    east / west boundary node in row ``y``; ``north[x]`` / ``south[x]`` store
    the row of the most recently visited north / south boundary node in
    column ``x``.  Entries start undefined (absent), the paper's "-".
    """

    east: Dict[int, int] = field(default_factory=dict)
    west: Dict[int, int] = field(default_factory=dict)
    north: Dict[int, int] = field(default_factory=dict)
    south: Dict[int, int] = field(default_factory=dict)

    def update(self, position: Coord, side: Side) -> None:
        """Record *position* as the most recent boundary node of *side*."""
        x, y = position
        if side is Side.EAST:
            self.east[y] = x
        elif side is Side.WEST:
            self.west[y] = x
        elif side is Side.NORTH:
            self.north[x] = y
        elif side is Side.SOUTH:
            self.south[x] = y

    def defined_entries(self) -> int:
        """Number of defined entries (used by memory-footprint diagnostics)."""
        return len(self.east) + len(self.west) + len(self.north) + len(self.south)


@dataclass(frozen=True)
class DetectedSection:
    """A concave section discovered during the ring walk.

    ``end_node`` is the boundary node that recognised itself as the
    notification end node; ``section`` is the concave row/column section it
    is responsible for (in the same representation used by the centralized
    solution, so the two can be compared directly).
    """

    end_node: Coord
    section: Section
    step: int  # walk step (0-based) at which the detection happened


@dataclass
class RingConstruction:
    """Outcome of the boundary-ring construction for one component.

    ``walk`` is the outer clockwise ring; ``hole_walks`` contains one inner
    walk per closed concave region (each started by the hole's own
    south-west inner corner, as in the paper's Figure 5(c)).  All rings are
    constructed concurrently by their initiators, so the round count is the
    length of the longest walk.
    """

    component: FaultComponent
    initiator: Coord
    walk: List[Coord]
    boundary_array: BoundaryArray
    detected: List[DetectedSection]
    candidate_initiators: List[Coord]
    hole_walks: List[List[Coord]] = field(default_factory=list)

    @property
    def rounds(self) -> int:
        """Rounds needed for the initiation messages to circle the component.

        Each message advances one boundary node per round; the outer ring
        and the inner rings of closed concave regions proceed concurrently.
        """
        lengths = [len(self.walk)] + [len(walk) for walk in self.hole_walks]
        return max(lengths) if lengths else 0

    @property
    def total_ring_hops(self) -> int:
        """Total message hops spent by all ring walks of the component."""
        return len(self.walk) + sum(len(walk) for walk in self.hole_walks)

    def detected_sections(self) -> List[Section]:
        """Return the concave sections recognised during the walks."""
        return [d.section for d in self.detected]

    def notification_end_node(self, section: Section) -> Optional[Coord]:
        """Return the end node detected for *section*, if any."""
        for entry in self.detected:
            if entry.section == section:
                return entry.end_node
        return None


def _southwest_corner_candidates(component: FaultComponent) -> List[Coord]:
    """Return every south-west (inner or outer) corner of the component.

    * A *south-west outer corner* touches the component only through its
      north-east diagonal neighbour.
    * A *south-west inner corner* is simultaneously an east and a north
      boundary node (it sits in a notch that opens towards the south-west).
    """
    nodes = component.nodes
    sides = boundary_nodes(nodes)
    candidates: Set[Coord] = set()
    for position, position_sides in sides.items():
        if Side.EAST in position_sides and Side.NORTH in position_sides:
            candidates.add(position)
    for x, y in nodes:
        corner = (x - 1, y - 1)
        if corner in nodes:
            continue
        if (x - 1, y) in nodes or (x, y - 1) in nodes:
            continue
        if corner not in sides:  # diagonal-only contact: outer corner
            candidates.add(corner)
    return sorted(candidates)


def elect_initiator(component: FaultComponent) -> Tuple[Coord, List[Coord]]:
    """Elect the dominating initiator among the south-west corners.

    Every south-west corner may start the ring construction; when a node
    receives more than one initiation message the overwriting rule keeps the
    one with the smaller ``x`` (then smaller ``y``) initiator ID, so the
    west-most south-west corner eventually dominates.  The election is
    resolved here directly; the full set of candidates is returned so that
    callers (and tests) can inspect it.
    """
    candidates = _southwest_corner_candidates(component)
    if not candidates:
        # Degenerate shapes (e.g. a single column) still have the outer
        # corner south-west of the anchor node.
        anchor = min(component.nodes)
        return (anchor[0] - 1, anchor[1] - 1), []
    winner = min(candidates, key=lambda c: (c[0], c[1]))
    return winner, candidates


def _sides_of(position: Coord, nodes: Set[Coord]) -> List[Side]:
    """Return the boundary sides *position* holds w.r.t. the component."""
    x, y = position
    sides: List[Side] = []
    if (x - 1, y) in nodes:
        sides.append(Side.EAST)  # component to the west: position is its east boundary
    if (x + 1, y) in nodes:
        sides.append(Side.WEST)
    if (x, y + 1) in nodes:
        sides.append(Side.SOUTH)  # component above: position is its south boundary
    if (x, y - 1) in nodes:
        sides.append(Side.NORTH)
    return sides


def construct_boundary_ring(component: FaultComponent) -> RingConstruction:
    """Simulate the boundary-ring construction for one component.

    The initiation message starts at the elected initiator and visits the
    boundary ring clockwise.  At every east/south/west/north boundary node
    it updates the boundary array and applies the notification-end-node
    rules of step 1(b):

    * an **east** boundary node whose row already has a **west** record at a
      column no smaller than its own marks a concave *row* section;
    * a **west** boundary node whose row has an **east** record at a column
      no larger than its own marks a concave *row* section;
    * a **south** boundary node whose column has a **north** record at a row
      no larger than its own marks a concave *column* section;
    * a **north** boundary node whose column has a **south** record at a row
      no smaller than its own marks a concave *column* section.

    When one row (or column) of a component contains several separate gaps,
    the single "most recently visited" entry per row can briefly pair an end
    node with a stale record from a different gap, yielding a candidate
    range that crosses the component.  The paper resolves this with an
    optimisation it only sketches ("holding the second most recently visited
    boundary node information ... details are skipped"); here the same
    effect is obtained by discarding any candidate range that contains a
    component node, which keeps exactly the genuine Definition-3 sections.
    """
    nodes = set(component.nodes)
    initiator, candidates = elect_initiator(component)
    walk = boundary_ring(nodes)
    if initiator in walk:
        start = walk.index(initiator)
        walk = walk[start:] + walk[:start]
    inner_walks = hole_rings(nodes)

    detected: List[DetectedSection] = []
    seen_sections: Set[Section] = set()
    outer_array = BoundaryArray()

    def process(ring_walk: List[Coord], array: BoundaryArray) -> None:
        for step, position in enumerate(ring_walk):
            sides = _sides_of(position, nodes)
            if not sides:
                continue  # outer corner: part of the ring but updates nothing
            x, y = position
            # Step 1(a): update the boundary array for every status held.
            for side in sides:
                array.update(position, side)
            # Step 1(b): notification end node checks.
            for side in sides:
                section: Optional[Section] = None
                if side is Side.EAST and y in array.west and array.west[y] >= x:
                    section = Section("row", y, x, array.west[y])
                elif side is Side.WEST and y in array.east and array.east[y] <= x:
                    section = Section("row", y, array.east[y], x)
                elif side is Side.SOUTH and x in array.north and array.north[x] <= y:
                    section = Section("column", x, array.north[x], y)
                elif side is Side.NORTH and x in array.south and array.south[x] >= y:
                    section = Section("column", x, y, array.south[x])
                if section is None or section in seen_sections:
                    continue
                if any(node in nodes for node in section.nodes()):
                    continue  # stale pairing across a second gap in the same line
                seen_sections.add(section)
                detected.append(
                    DetectedSection(end_node=position, section=section, step=step)
                )

    # Each initiation message carries its own boundary array: one for the
    # outer ring, one per closed concave region.
    process(walk, outer_array)
    for inner in inner_walks:
        process(inner, BoundaryArray())

    return RingConstruction(
        component=component,
        initiator=initiator,
        walk=walk,
        boundary_array=outer_array,
        detected=detected,
        candidate_initiators=candidates,
        hole_walks=inner_walks,
    )
