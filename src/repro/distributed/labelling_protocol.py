"""Labelling schemes 1 and 2 as per-node message-passing programs.

These programs run on the :class:`~repro.distributed.engine.SynchronousEngine`
and implement exactly the neighbour-exchange behaviour the paper assumes:

* every node knows the status of its neighbours only;
* a node re-announces its status to its neighbours whenever the status
  changes;
* the construction is finished when no announcement is in flight any more.

The number of rounds the engine executes matches the fixed-point round
count of the vectorised sweeps in :mod:`repro.core.labelling`; the
integration tests assert both the final label maps and the round counts
agree on randomly generated fault patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple


from repro.distributed.engine import Envelope, NodeProgram, Outgoing, SynchronousEngine
from repro.mesh.topology import Topology
from repro.types import Coord


@dataclass(frozen=True)
class StatusAnnouncement:
    """Payload announcing the sender's current label.

    ``scheme`` is 1 (unsafe announcement) or 2 (enabled announcement).
    """

    scheme: int
    value: bool


class DistributedLabelling:
    """Runs the distributed labelling schemes and exposes their outcome."""

    def __init__(self, topology: Topology, faults: Iterable[Coord]) -> None:
        self.topology = topology
        self.faults: Set[Coord] = set(faults)

    # -- scheme 1 -------------------------------------------------------------------

    def run_scheme_1(self) -> Tuple[Dict[Coord, bool], int]:
        """Run distributed scheme 1; return (unsafe map, rounds)."""
        faults = self.faults
        topology = self.topology

        class Program(NodeProgram):
            def __init__(self, node: Coord, topo: Topology) -> None:
                super().__init__(node, topo)
                self.is_faulty = node in faults
                self.unsafe = self.is_faulty
                # Which neighbours are unsafe, split by dimension.
                self.unsafe_x: Set[Coord] = set()
                self.unsafe_y: Set[Coord] = set()

            def start(self) -> List[Outgoing]:
                if self.is_faulty:
                    return [
                        (n, StatusAnnouncement(scheme=1, value=True))
                        for n in self.neighbours()
                    ]
                return []

            def on_round(self, inbox: List[Envelope]) -> List[Outgoing]:
                for envelope in inbox:
                    if not isinstance(envelope.payload, StatusAnnouncement):
                        continue
                    if envelope.payload.scheme != 1 or not envelope.payload.value:
                        continue
                    if envelope.sender[1] == self.node[1]:
                        self.unsafe_x.add(envelope.sender)
                    if envelope.sender[0] == self.node[0]:
                        self.unsafe_y.add(envelope.sender)
                if self.unsafe or self.is_faulty:
                    return []
                if self.unsafe_x and self.unsafe_y:
                    self.unsafe = True
                    return [
                        (n, StatusAnnouncement(scheme=1, value=True))
                        for n in self.neighbours()
                    ]
                return []

        engine = SynchronousEngine(topology, Program)
        stats = engine.run()
        unsafe_map = engine.collect("unsafe")
        # The final round only confirms quiescence of already-stable labels:
        # the last announcement batch changes no further status.  The number
        # of rounds in which some node changed equals stats.rounds minus the
        # trailing no-change round, which is how the vectorised sweep counts.
        rounds = max(0, stats.rounds - 1)
        return unsafe_map, rounds

    # -- scheme 2 --------------------------------------------------------------------

    def run_scheme_2(self, unsafe: Dict[Coord, bool]) -> Tuple[Dict[Coord, bool], int]:
        """Run distributed scheme 2 on a scheme-1 outcome; return (disabled, rounds)."""
        faults = self.faults
        topology = self.topology

        class Program(NodeProgram):
            def __init__(self, node: Coord, topo: Topology) -> None:
                super().__init__(node, topo)
                self.is_faulty = node in faults
                self.disabled = bool(unsafe.get(node, False)) or self.is_faulty
                self.enabled_neighbours: Set[Coord] = set()

            def start(self) -> List[Outgoing]:
                if not self.disabled:
                    return [
                        (n, StatusAnnouncement(scheme=2, value=True))
                        for n in self.neighbours()
                    ]
                return []

            def on_round(self, inbox: List[Envelope]) -> List[Outgoing]:
                for envelope in inbox:
                    if not isinstance(envelope.payload, StatusAnnouncement):
                        continue
                    if envelope.payload.scheme != 2 or not envelope.payload.value:
                        continue
                    self.enabled_neighbours.add(envelope.sender)
                if not self.disabled or self.is_faulty:
                    return []
                if len(self.enabled_neighbours) >= 2:
                    self.disabled = False
                    return [
                        (n, StatusAnnouncement(scheme=2, value=True))
                        for n in self.neighbours()
                    ]
                return []

        engine = SynchronousEngine(topology, Program)
        stats = engine.run()
        disabled_map = engine.collect("disabled")
        rounds = max(0, stats.rounds - 1)
        return disabled_map, rounds


def run_distributed_scheme_1(
    topology: Topology, faults: Iterable[Coord]
) -> Tuple[Dict[Coord, bool], int]:
    """Convenience wrapper: distributed labelling scheme 1."""
    return DistributedLabelling(topology, faults).run_scheme_1()


def run_distributed_scheme_2(
    topology: Topology, faults: Iterable[Coord], unsafe: Dict[Coord, bool]
) -> Tuple[Dict[Coord, bool], int]:
    """Convenience wrapper: distributed labelling scheme 2."""
    return DistributedLabelling(topology, faults).run_scheme_2(unsafe)
