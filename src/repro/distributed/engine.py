"""A synchronous round-based message-passing engine.

The engine models the paper's system assumption: processors only talk to
their physical neighbours, and global constructions proceed in *rounds* of
neighbour information exchanges and updates.  One round consists of

1. delivering every message sent during the previous round, and
2. letting every node that received something (or that asked to be
   re-scheduled) process its inbox and emit new messages to neighbours.

The engine stops when no message is in flight and no node asked to run
again; the number of rounds executed until that point is the quantity
reported in the paper's Figure 11.

The engine is deliberately small and dependency-free: it is used by the
distributed labelling protocols (scheme 1 and 2) and by the protocol tests;
the large evaluation sweeps use the equivalent vectorised sweeps in
:mod:`repro.core.labelling`, whose round counts are validated against this
engine on small meshes.
"""

from __future__ import annotations

import abc
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

from repro.mesh.topology import Topology
from repro.types import Coord


#: An outgoing message: ``(destination node, payload)``.
Outgoing = Tuple[Coord, Any]


@dataclass
class Envelope:
    """A delivered message: who sent it and what it carries."""

    sender: Coord
    payload: Any


@dataclass
class RoundStats:
    """Per-run statistics collected by the engine."""

    rounds: int = 0
    messages: int = 0
    deliveries_per_round: List[int] = field(default_factory=list)

    def record_round(self, delivered: int) -> None:
        """Account one executed round that delivered *delivered* messages."""
        self.rounds += 1
        self.messages += delivered
        self.deliveries_per_round.append(delivered)


class NodeProgram(abc.ABC):
    """The behaviour of one node in a distributed construction.

    A program is instantiated once per node.  ``start`` runs before round 1
    and may emit initial messages (e.g. a faulty node's neighbours noticing
    the missing heartbeat, modelled as the faulty node announcing itself).
    ``on_round`` runs whenever the node has incoming messages or previously
    requested rescheduling via :meth:`request_wakeup`.
    """

    def __init__(self, node: Coord, topology: Topology) -> None:
        self.node = node
        self.topology = topology
        self._wakeup_requested = False

    # -- scheduling helpers ------------------------------------------------------

    def request_wakeup(self) -> None:
        """Ask the engine to run this node next round even without messages."""
        self._wakeup_requested = True

    def consume_wakeup(self) -> bool:
        """Internal: return and clear the wake-up request flag."""
        requested = self._wakeup_requested
        self._wakeup_requested = False
        return requested

    def neighbours(self) -> List[Coord]:
        """Physical neighbours of this node."""
        return self.topology.neighbours(self.node)

    # -- protocol hooks ------------------------------------------------------------

    def start(self) -> List[Outgoing]:
        """Emit the messages sent before the first round (default: none)."""
        return []

    @abc.abstractmethod
    def on_round(self, inbox: List[Envelope]) -> List[Outgoing]:
        """Process one round's inbox and return the messages to send."""


class SynchronousEngine:
    """Run a :class:`NodeProgram` on every node of a topology."""

    def __init__(
        self,
        topology: Topology,
        program_factory: Callable[[Coord, Topology], NodeProgram],
    ) -> None:
        self.topology = topology
        self.programs: Dict[Coord, NodeProgram] = {
            node: program_factory(node, topology) for node in topology.nodes()
        }
        self.stats = RoundStats()

    def run(self, max_rounds: int = 10_000) -> RoundStats:
        """Run the protocol to quiescence and return the round statistics."""
        pending: Dict[Coord, List[Envelope]] = defaultdict(list)
        for node, program in self.programs.items():
            for destination, payload in program.start():
                self._post(pending, node, destination, payload)

        for _ in range(max_rounds):
            woken = [
                node
                for node, program in self.programs.items()
                if program.consume_wakeup()
            ]
            if not pending and not woken:
                return self.stats
            inboxes = pending
            pending = defaultdict(list)
            delivered = sum(len(v) for v in inboxes.values())
            active = set(inboxes) | set(woken)
            for node in sorted(active):
                outgoing = self.programs[node].on_round(inboxes.get(node, []))
                for destination, payload in outgoing:
                    self._post(pending, node, destination, payload)
            self.stats.record_round(delivered)
        raise RuntimeError(
            f"protocol did not quiesce within {max_rounds} rounds"
        )

    def _post(
        self,
        pending: Dict[Coord, List[Envelope]],
        sender: Coord,
        destination: Coord,
        payload: Any,
    ) -> None:
        """Queue a message for delivery next round (neighbours only)."""
        mapped = self.topology.normalise(destination)
        if mapped is None:
            return  # messages to positions outside the mesh are dropped
        if mapped not in self.topology.neighbours(sender) and mapped != sender:
            raise ValueError(
                f"node {sender} attempted to send directly to non-neighbour {destination}"
            )
        pending[mapped].append(Envelope(sender=sender, payload=payload))

    # -- inspection -----------------------------------------------------------------

    def state_of(self, node: Coord) -> NodeProgram:
        """Return the program instance (and thus local state) of *node*."""
        return self.programs[node]

    def collect(self, attribute: str) -> Dict[Coord, Any]:
        """Collect a named attribute from every node's program."""
        return {node: getattr(program, attribute) for node, program in self.programs.items()}
