"""Distributed formation of fault regions.

The paper's constructions are designed for a system where every processor
knows only the status of its neighbours and all information spreads through
rounds of neighbour message exchange.  This subpackage provides:

* :mod:`repro.distributed.engine` -- a synchronous round-based
  message-passing engine (nodes, inboxes, per-round delivery, quiescence
  detection and round accounting).
* :mod:`repro.distributed.labelling_protocol` -- labelling schemes 1 and 2
  written as per-node programs for the engine; used to validate that the
  vectorised fixed-point sweeps in :mod:`repro.core.labelling` count exactly
  the rounds the real protocol needs.
* :mod:`repro.distributed.ring` -- the boundary-ring construction of the
  distributed minimum-faulty-polygon solution: initiator election by the
  overwriting rule, the boundary array ``V[1..n](E, S, W, N)`` piggybacked
  on the initiation message, and detection of notification end nodes.
* :mod:`repro.distributed.notification` -- propagation of disable
  notifications along concave row/column sections, detouring around
  blocking polygons.
* :mod:`repro.distributed.dmfp` -- the full distributed construction (DMFP)
  with its round accounting, as plotted in Figure 11.
"""

from repro.distributed.engine import NodeProgram, SynchronousEngine, RoundStats
from repro.distributed.labelling_protocol import (
    DistributedLabelling,
    run_distributed_scheme_1,
    run_distributed_scheme_2,
)
from repro.distributed.ring import (
    BoundaryArray,
    RingConstruction,
    construct_boundary_ring,
    elect_initiator,
)
from repro.distributed.notification import NotificationPlan, plan_notifications
from repro.distributed.dmfp import (
    DistributedMinimumPolygonConstruction,
    build_minimum_polygons_distributed,
)

__all__ = [
    "NodeProgram",
    "SynchronousEngine",
    "RoundStats",
    "DistributedLabelling",
    "run_distributed_scheme_1",
    "run_distributed_scheme_2",
    "BoundaryArray",
    "RingConstruction",
    "construct_boundary_ring",
    "elect_initiator",
    "NotificationPlan",
    "plan_notifications",
    "DistributedMinimumPolygonConstruction",
    "build_minimum_polygons_distributed",
]
