"""The distributed minimum faulty polygon construction (DMFP).

This module ties the pieces of Section 3.2 together for a whole network:

1. every non-faulty node determines its boundary status with respect to the
   adjacent faulty components (one round of neighbour exchange);
2. for every component, the elected initiator's message circles the
   boundary ring, building the boundary array and identifying the
   notification end nodes (one ring hop per round);
3. every notification end node pushes the disabled status along its concave
   row/column section, detouring around blocking polygons (one hop per
   round).

Components are processed concurrently, so the network-wide number of rounds
is the boundary-determination round plus the maximum, over components, of
the ring rounds plus the notification rounds.  This is the DMFP curve of
the paper's Figure 11.  The resulting node statuses are identical to the
centralized construction (the integration tests assert this), because both
disable exactly the concave row/column sections of every component.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

import numpy as np

from repro.core.components import FaultComponent, find_components
from repro.core.regions import FaultRegion, convexify_regions
from repro.geometry import masks
from repro.distributed.notification import NotificationPlan, plan_notifications
from repro.distributed.ring import RingConstruction, construct_boundary_ring
from repro.faults.scenario import FaultScenario
from repro.mesh.status import StatusGrid
from repro.mesh.topology import Mesh2D, Topology
from repro.types import Coord, FaultRegionModel


#: Rounds spent by every node learning the fault status of its neighbours
#: and therefore its own boundary status (a single neighbour exchange).
BOUNDARY_STATUS_ROUNDS = 1


@dataclass
class ComponentConstruction:
    """Per-component record of the distributed construction."""

    component: FaultComponent
    ring: RingConstruction
    plan: NotificationPlan

    @property
    def polygon(self) -> Set[Coord]:
        """The component's minimum faulty polygon (faults plus notified nodes)."""
        return set(self.component.nodes) | self.plan.disabled_nodes

    @property
    def rounds(self) -> int:
        """Rounds this component's construction needs (ring + notification)."""
        return BOUNDARY_STATUS_ROUNDS + self.ring.rounds + self.plan.rounds


@dataclass
class DistributedMinimumPolygonConstruction:
    """Result of the distributed minimum faulty polygon construction."""

    grid: StatusGrid
    regions: List[FaultRegion]
    components: List[FaultComponent]
    per_component: List[ComponentConstruction]
    rounds: int
    model: FaultRegionModel = FaultRegionModel.MINIMUM_FAULTY_POLYGON
    #: Grid mapping every cell to the index of the region containing it
    #: (-1 outside every region); the routing layer's O(1) membership test.
    region_index: Optional[np.ndarray] = field(default=None, compare=False, repr=False)

    @property
    def num_disabled_nonfaulty(self) -> int:
        """Non-faulty nodes disabled by the polygons (Figure 9 quantity)."""
        return self.grid.num_disabled_nonfaulty

    @property
    def mean_region_size(self) -> float:
        """Average polygon size in nodes (Figure 10 quantity)."""
        if not self.regions:
            return 0.0
        return sum(r.size for r in self.regions) / len(self.regions)

    @property
    def total_messages(self) -> int:
        """Total message hops spent by ring walks and notifications."""
        return sum(
            entry.ring.rounds + entry.plan.total_messages
            for entry in self.per_component
        )

    def all_orthogonal_convex(self) -> bool:
        """Whether every final region satisfies Definition 1."""
        return all(region.is_orthogonal_convex for region in self.regions)


def assemble_distributed(
    faults: Sequence[Coord],
    topology: Topology,
    components: List[FaultComponent],
    per_component: List[ComponentConstruction],
) -> DistributedMinimumPolygonConstruction:
    """Combine per-component ring/notification results into a network result.

    Exposed so that callers that maintain the component partition and cache
    the boundary rings themselves (notably the incremental
    :class:`repro.api.MeshSession`) can reuse the final status piling.
    """
    grid = StatusGrid(topology, faults)
    if masks.kernel_enabled():
        # Whole-array piling: OR every polygon into one mask (clipped to the
        # grid); injected faults are already unsafe/disabled, so including
        # them in the OR preserves the superseding rule bit-for-bit.
        width, height = grid.disabled.shape
        painted = np.zeros((width, height), dtype=bool)
        for entry in per_component:
            polygon = entry.polygon
            if not polygon:
                continue
            pts = np.asarray(list(polygon))
            keep = (
                (pts[:, 0] >= 0)
                & (pts[:, 0] < width)
                & (pts[:, 1] >= 0)
                & (pts[:, 1] < height)
            )
            pts = pts[keep]
            painted[pts[:, 0], pts[:, 1]] = True
        grid.unsafe |= painted
        grid.disabled |= painted
    else:
        fault_set = set(faults)
        for entry in per_component:
            for node in entry.polygon:
                if node in fault_set or not topology.contains(node):
                    continue
                grid.mark_unsafe(node)
                grid.mark_disabled(node)

    # Same convexity repair as the centralized assemble: overlapping
    # polygons piled into one region must stay orthogonal convex, and the
    # distributed result must keep matching the centralized one exactly.
    if masks.kernel_enabled():
        regions, region_index = convexify_regions(grid, return_index=True)
    else:
        regions, region_index = convexify_regions(grid), None
    rounds = max((entry.rounds for entry in per_component), default=0)
    return DistributedMinimumPolygonConstruction(
        grid=grid,
        regions=regions,
        components=components,
        per_component=per_component,
        rounds=rounds,
        region_index=region_index,
    )


def build_minimum_polygons_distributed(
    faults: Sequence[Coord],
    topology: Optional[Topology] = None,
    width: int = 100,
    height: Optional[int] = None,
) -> DistributedMinimumPolygonConstruction:
    """Run the distributed minimum faulty polygon construction.

    Either pass an explicit *topology* or a *width*/*height* pair (a square
    ``width x width`` mesh by default, matching the paper's setup).
    """
    if topology is None:
        topology = Mesh2D(width, height if height is not None else width)
    components = find_components(faults)
    fault_set = set(faults)

    per_component: List[ComponentConstruction] = []
    for component in components:
        ring = construct_boundary_ring(component)
        # Faults of the other components are the physically dead nodes a
        # notification message must detour around (blocking polygons).
        blocking = fault_set - set(component.nodes)
        plan = plan_notifications(component, ring, blocking)
        per_component.append(
            ComponentConstruction(component=component, ring=ring, plan=plan)
        )
    return assemble_distributed(faults, topology, components, per_component)


def build_distributed_for_scenario(
    scenario: FaultScenario,
) -> DistributedMinimumPolygonConstruction:
    """Run the distributed construction for a :class:`FaultScenario`."""
    return build_minimum_polygons_distributed(
        scenario.faults, topology=scenario.topology()
    )
