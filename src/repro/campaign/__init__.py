"""Resumable, content-addressed campaign execution at statistical scale.

The paper's figures average a handful of trials per sweep point; this
package runs the 100k+-trial campaigns those figures gesture at (ROADMAP
item 5) without ever holding a campaign in memory or losing work to a
crash:

* :class:`CampaignSpec` -- canonical campaign identity (kind, axis,
  trials, models, params) with a content fingerprint; every trial gets
  a content key via :func:`trial_key`.
* :class:`CampaignStore` -- append-only chunked columnar store (NumPy
  structured chunks + an NDJSON manifest with the journal's torn-tail
  discipline).
* :class:`CampaignRunner` -- pull-based dispatch over pluggable
  transports (``local`` process pool, ``tcp`` shards), bounded
  in-flight memory, heartbeat/timeout rescheduling with
  :class:`~repro.serve.retry.RetrySchedule` backoff, and resume-by-
  default: running against an existing store skips completed trials.
* :class:`StreamingReducer` / :class:`CampaignPoint` -- Welford
  mean/variance folded strictly in (point, trial) order, yielding
  per-point 95% confidence intervals; ``CampaignRunner.sweep_points``
  decodes rows back to the exact metrics objects for bit-identical
  legacy ``SweepPoint`` reductions.

Entry points: ``SweepExecutor.run/run_routing/run_latency(campaign=
dir)`` and the ``repro-mesh campaign`` CLI verbs.
"""

from repro.campaign.reducers import (
    Z95,
    CampaignPoint,
    Moments,
    RowCodec,
    StreamingReducer,
    fold_moments,
)
from repro.campaign.runner import (
    DEFAULT_RETRY,
    CampaignRunner,
    campaign_status,
    format_status,
)
from repro.campaign.spec import (
    CODE_VERSION,
    CampaignError,
    CampaignKindSpec,
    CampaignSpec,
    TrialDescriptor,
    available_campaign_kinds,
    get_campaign_kind,
    register_campaign_kind,
    trial_key,
)
from repro.campaign.store import CampaignStore
from repro.campaign.transport import (
    LocalTransport,
    Task,
    TcpTransport,
    TransportSpec,
    available_transports,
    get_transport,
    register_transport,
    run_tcp_worker,
)

__all__ = [
    "CODE_VERSION",
    "DEFAULT_RETRY",
    "Z95",
    "CampaignError",
    "CampaignKindSpec",
    "CampaignPoint",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignStore",
    "LocalTransport",
    "Moments",
    "RowCodec",
    "StreamingReducer",
    "Task",
    "TcpTransport",
    "TransportSpec",
    "TrialDescriptor",
    "available_campaign_kinds",
    "available_transports",
    "campaign_status",
    "fold_moments",
    "format_status",
    "get_campaign_kind",
    "get_transport",
    "register_campaign_kind",
    "register_transport",
    "run_tcp_worker",
    "trial_key",
]
