"""Append-only chunked columnar store for campaign results.

Layout of one campaign directory::

    manifest.jsonl              # NDJSON: one header record + one per chunk
    chunks/chunk-000001.npy     # NumPy structured array, codec dtype
    chunks/chunk-000002.npy
    ...

The manifest reuses the journal's append discipline
(:mod:`repro.serve.journal`): every record is one JSON line, flushed
(and fsynced) before the append returns, and the loader tolerates
exactly one torn *final* line -- corruption anywhere else raises
:class:`~repro.campaign.spec.CampaignError`.  Chunk files are written,
flushed and fsynced *before* their manifest line, so crash recovery is
trivial: a chunk without a manifest line is an orphan (ignored and
overwritten by the next append at that index); a manifest line without
an intact chunk can only be the final record (the fsync order says so)
and is dropped like a torn line.

The header pins the campaign fingerprint, canonical spec, dtype and
code version.  Re-opening verifies the fingerprint, which is what makes
``resume`` safe: a store can only ever continue the campaign that
created it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Set, Union

import numpy as np

from repro.campaign.spec import CODE_VERSION, CampaignError, CampaignSpec

SCHEMA = "repro.campaign.store/v1"


def _encode_record(record: Dict[str, Any]) -> bytes:
    return json.dumps(record, separators=(",", ":")).encode("utf-8") + b"\n"


def _dtype_to_wire(dtype: np.dtype) -> List[List[str]]:
    return [[name, dtype.fields[name][0].str] for name in dtype.names]


def _dtype_from_wire(fields: Any) -> np.dtype:
    return np.dtype([(str(name), str(fmt)) for name, fmt in fields])


class CampaignStore:
    """One campaign's on-disk result set (append-only, resumable).

    Use :meth:`create` for a fresh directory and :meth:`open` to resume
    an existing one; the plain constructor is their shared plumbing.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        campaign: CampaignSpec,
        dtype: np.dtype,
        *,
        chunk_records: Optional[List[Dict[str, Any]]] = None,
    ) -> None:
        self.directory = Path(directory)
        self.campaign = campaign
        self.dtype = dtype
        self.manifest_path = self.directory / "manifest.jsonl"
        self.chunk_dir = self.directory / "chunks"
        self.chunk_records: List[Dict[str, Any]] = list(chunk_records or [])
        self._file = open(self.manifest_path, "ab")

    # -- lifecycle ------------------------------------------------------------------

    @classmethod
    def create(
        cls, directory: Union[str, Path], campaign: CampaignSpec
    ) -> "CampaignStore":
        """Initialise a fresh store directory (header written and synced)."""
        directory = Path(directory)
        if (directory / "manifest.jsonl").exists():
            raise CampaignError(f"campaign store already exists at {directory}")
        (directory / "chunks").mkdir(parents=True, exist_ok=True)
        dtype = campaign.codec().dtype
        header = {
            "t": "header",
            "schema": SCHEMA,
            "code": CODE_VERSION,
            "fingerprint": campaign.fingerprint(),
            "spec": campaign.canonical(),
            "dtype": _dtype_to_wire(dtype),
            "total_trials": campaign.total_trials,
        }
        store = cls(directory, campaign, dtype)
        store._append_manifest(header)
        return store

    @classmethod
    def open(
        cls,
        directory: Union[str, Path],
        campaign: Optional[CampaignSpec] = None,
    ) -> "CampaignStore":
        """Open an existing store, verifying it belongs to *campaign*.

        With ``campaign=None`` the spec is rebuilt from the manifest
        header (status/reduce tooling).  Recorded chunks whose file is
        missing or unreadable are dropped if they are the final record
        (crash tail), fatal otherwise.
        """
        directory = Path(directory)
        manifest_path = directory / "manifest.jsonl"
        if not manifest_path.exists():
            raise CampaignError(f"no campaign store at {directory}")
        records = _load_manifest(manifest_path)
        header = records[0]
        if header.get("t") != "header" or header.get("schema") != SCHEMA:
            raise CampaignError(f"{manifest_path} does not start with a store header")
        if campaign is None:
            campaign = CampaignSpec.from_canonical(header["spec"])
        if header.get("fingerprint") != campaign.fingerprint():
            raise CampaignError(
                f"campaign store at {directory} belongs to fingerprint "
                f"{header.get('fingerprint')!r}, not {campaign.fingerprint()!r} "
                "-- refusing to mix results"
            )
        dtype = _dtype_from_wire(header["dtype"])
        chunk_records = [r for r in records[1:] if r.get("t") == "chunk"]
        # Validate the chunk tail: the fsync ordering guarantees every
        # recorded chunk is intact on disk except possibly the last one.
        while chunk_records:
            last = chunk_records[-1]
            path = directory / str(last["file"])
            if _chunk_intact(path, dtype, int(last["rows"])):
                break
            chunk_records.pop()
        for record in chunk_records:
            path = directory / str(record["file"])
            if not _chunk_intact(path, dtype, int(record["rows"])):
                raise CampaignError(
                    f"campaign chunk {record['file']!r} is missing or corrupt "
                    f"mid-store at {directory}"
                )
        return cls(directory, campaign, dtype, chunk_records=chunk_records)

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- appends --------------------------------------------------------------------

    def _append_manifest(self, record: Dict[str, Any]) -> None:
        self._file.write(_encode_record(record))
        self._file.flush()
        os.fsync(self._file.fileno())

    def append_rows(self, rows: np.ndarray) -> Dict[str, Any]:
        """Durably append one chunk of rows; returns its manifest record.

        The chunk file is fully on disk (fsynced) before its manifest
        line is appended -- the crash-safety invariant the loader leans
        on.  An orphan file left at this index by an earlier crash is
        simply overwritten.
        """
        if rows.dtype != self.dtype:
            raise CampaignError("chunk dtype does not match the campaign store")
        if len(rows) == 0:
            raise CampaignError("refusing to append an empty chunk")
        index = len(self.chunk_records) + 1
        name = f"chunks/chunk-{index:06d}.npy"
        path = self.directory / name
        with open(path, "wb") as chunk_file:
            np.save(chunk_file, rows)
            chunk_file.flush()
            os.fsync(chunk_file.fileno())
        record = {"t": "chunk", "seq": index, "file": name, "rows": int(len(rows))}
        self._append_manifest(record)
        self.chunk_records.append(record)
        return record

    # -- reads ----------------------------------------------------------------------

    def iter_chunks(self) -> Iterator[np.ndarray]:
        """The recorded chunks, in append order."""
        for record in self.chunk_records:
            yield np.load(self.directory / str(record["file"]))

    @property
    def rows_stored(self) -> int:
        """Total rows across recorded chunks (duplicates included)."""
        return sum(int(record["rows"]) for record in self.chunk_records)

    def completed_keys(self) -> Set[str]:
        """The content keys of every stored trial (the skip set)."""
        keys: Set[str] = set()
        for chunk in self.iter_chunks():
            keys.update(key.decode("ascii") for key in chunk["key"])
        return keys

    def info(self) -> Dict[str, Any]:
        """Progress counters for status reporting."""
        return {
            "directory": str(self.directory),
            "fingerprint": self.campaign.fingerprint(),
            "kind": self.campaign.kind,
            "chunks": len(self.chunk_records),
            "rows": self.rows_stored,
            "total_trials": self.campaign.total_trials,
        }


def _chunk_intact(path: Path, dtype: np.dtype, rows: int) -> bool:
    """True when *path* loads as *rows* records of *dtype*."""
    try:
        data = np.load(path)
    except (OSError, ValueError):
        return False
    return data.dtype == dtype and len(data) == rows


def _load_manifest(path: Path) -> List[Dict[str, Any]]:
    """Parse manifest records, dropping at most one torn final line."""
    raw_lines = path.read_bytes().split(b"\n")
    if raw_lines and raw_lines[-1] == b"":
        raw_lines.pop()
    records: List[Dict[str, Any]] = []
    for index, line in enumerate(raw_lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line.decode("utf-8"))
            if not isinstance(record, dict) or "t" not in record:
                raise ValueError("not a manifest record")
        except (UnicodeDecodeError, ValueError) as exc:
            if index == len(raw_lines) - 1:
                break
            raise CampaignError(
                f"corrupt campaign manifest at line {index + 1} of {path}: {exc}"
            ) from None
        records.append(record)
    if not records:
        raise CampaignError(f"campaign manifest {path} holds no intact records")
    return records
