"""Campaign identity: canonical specs, content-addressed trial keys.

A *campaign* is a sweep at statistical scale: one axis (fault counts or
offered loads), ``trials`` independently seeded trials per point, run
through the same per-trial workers as :class:`~repro.api.executor.
SweepExecutor` but streamed to a resumable on-disk store.

Identity is content-addressed at two levels:

* :meth:`CampaignSpec.fingerprint` hashes the canonical campaign
  description (kind, axis, trials, models, result-relevant parameters,
  code version).  A store directory belongs to exactly one fingerprint;
  resuming with a different spec is an error, not a silent mix.
* :func:`trial_key` hashes one trial's canonical fields (kind, the
  spec's result-relevant fields, seed, code version).  The store's
  completed-key set is consulted before dispatch, so re-running a
  campaign -- or a superset campaign sharing trials -- skips work that
  is already on disk.

Perf-only knobs (``engine``/``sim`` -- the array and scalar
implementations are proven bit-identical, see ``tests/test_routing_
engine.py`` / ``tests/test_netsim.py``) and bookkeeping
(``point_index``/``trial``: the seed already encodes the position) are
excluded from both hashes.  Carried registry spec objects are excluded
too: they pickle builder *references*, which have no stable canonical
form; workers resolve them from their registries instead.

Campaign kinds live in a :class:`~repro._registry.SpecRegistry` like
every other pluggable axis of the package, so tests (and future trial
kinds) can register their own runner/planner/codec triple.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro import __version__
from repro._registry import SpecRegistry

#: Code-version component of every content hash.  Bump the ``+campaign``
#: revision whenever trial semantics change without a package release --
#: stale results must never be reused across result-affecting changes.
CODE_VERSION = f"repro-{__version__}+campaign.1"

#: Parameters that never affect trial results (implementation/perf
#: selectors); excluded from fingerprints and trial keys.
PERF_PARAMS = frozenset({"engine", "sim"})

#: Trial-spec fields excluded from trial keys: carried registry spec
#: objects (builder references, no canonical form), perf selectors, and
#: sweep-position bookkeeping (the seed already encodes it).
_KEY_EXCLUDED_FIELDS = frozenset(
    {
        "specs",
        "router_spec",
        "traffic_spec",
        "engine_spec",
        "arrival_spec",
        "sim_spec",
        "point_index",
        "trial",
    }
) | PERF_PARAMS


class CampaignError(RuntimeError):
    """An unusable campaign: spec mismatch, corrupt store, or failed run."""


def canonical_value(value: Any) -> Any:
    """Map *value* onto the JSON-stable form used by every content hash.

    Tuples become lists, typed option dataclasses become ``{"__type__":
    ClassName, ...fields}`` dicts (the class name matters: two option
    types could share field names), dict keys are forced to strings.
    Anything unhashable by this scheme is rejected loudly rather than
    hashed by repr.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        encoded: Dict[str, Any] = {"__type__": type(value).__name__}
        for f in dataclasses.fields(value):
            encoded[f.name] = canonical_value(getattr(value, f.name))
        return encoded
    if isinstance(value, Mapping):
        return {str(key): canonical_value(val) for key, val in value.items()}
    raise TypeError(f"value {value!r} has no canonical form")


def _digest(payload: Any) -> str:
    data = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(data.encode("utf-8")).hexdigest()


def trial_key(kind: str, spec: Any) -> str:
    """Content hash identifying one trial's result (32 hex chars).

    Hashes the trial spec's canonical result-relevant fields together
    with the campaign *kind* and :data:`CODE_VERSION`.  Stable across
    processes and machines.  The bookkeeping fields (``point_index`` /
    ``trial``) are excluded -- the derived seed already encodes the
    position -- so a campaign extended at the end of its axis, or
    deepened with more trials per point, plans a superset of the keys
    the shorter campaign stored and skips the shared work.
    """
    fields = {
        f.name: canonical_value(getattr(spec, f.name))
        for f in dataclasses.fields(spec)
        if f.name not in _KEY_EXCLUDED_FIELDS
    }
    return _digest({"kind": kind, "code": CODE_VERSION, "fields": fields})[:32]


@dataclass(frozen=True, slots=True)
class TrialDescriptor:
    """One planned trial: its content key, sweep position, and spec."""

    key: str
    point: int
    trial: int
    x: float
    seed: int
    spec: Any


@dataclass(frozen=True)
class CampaignKindSpec:
    """One registered campaign kind (runner + planner + row codec)."""

    key: str
    label: str
    #: Worker entry point: ``runner(trial_spec) -> scenario metrics``.
    runner: Callable[[Any], Any]
    #: ``planner(campaign) -> Iterator[trial_spec]`` in (point, trial)
    #: order; kwargs are validated before the first trial is yielded.
    planner: Callable[["CampaignSpec"], Iterator[Any]]
    #: ``codec(campaign) -> RowCodec`` mapping metrics <-> store rows.
    codec: Callable[["CampaignSpec"], Any]
    aliases: Tuple[str, ...] = ()


_REGISTRY = SpecRegistry("campaign kind")


def register_campaign_kind(spec: CampaignKindSpec, replace: bool = False) -> CampaignKindSpec:
    """Register a campaign kind (``replace=True`` to swap an existing one)."""
    return _REGISTRY.register(spec, replace=replace)


def get_campaign_kind(key: str) -> CampaignKindSpec:
    """Look up a campaign kind by key or alias (case-insensitive)."""
    return _REGISTRY.get(key)


def available_campaign_kinds() -> Tuple[str, ...]:
    """The registered campaign kind keys."""
    return _REGISTRY.keys()


@dataclass(frozen=True)
class CampaignSpec:
    """Canonical description of one campaign (picklable, JSON-stable).

    ``axis`` holds the sweep's x values (fault counts or offered loads,
    stored as floats), ``params`` the kind-specific keyword arguments of
    the matching ``SweepExecutor.plan*`` method.  Use the
    :meth:`construction` / :meth:`routing` / :meth:`latency`
    constructors: they validate registry keys eagerly, so typos fail
    before a single trial is planned.
    """

    kind: str
    axis: Tuple[float, ...]
    trials: int
    models: Tuple[str, ...]
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise CampaignError("campaign trials must be at least 1")
        if not self.axis:
            raise CampaignError("campaign axis must not be empty")

    # -- constructors ---------------------------------------------------------------

    @classmethod
    def construction(
        cls,
        fault_counts: Sequence[int],
        trials: int,
        models: Optional[Sequence[str]] = None,
        **params: Any,
    ) -> "CampaignSpec":
        """A construction-metrics campaign (Figures 9-11 statistics)."""
        return cls._build("construction", fault_counts, trials, models, params)

    @classmethod
    def routing(
        cls,
        fault_counts: Sequence[int],
        trials: int,
        models: Optional[Sequence[str]] = None,
        **params: Any,
    ) -> "CampaignSpec":
        """A routed-traffic campaign (delivery/hops/detour statistics)."""
        return cls._build("routing", fault_counts, trials, models, params)

    @classmethod
    def latency(
        cls,
        loads: Sequence[float],
        trials: int,
        models: Optional[Sequence[str]] = None,
        **params: Any,
    ) -> "CampaignSpec":
        """A latency-vs-load campaign (contention-simulator statistics)."""
        return cls._build("latency", loads, trials, models, params)

    @classmethod
    def _build(
        cls,
        kind: str,
        axis: Sequence[Any],
        trials: int,
        models: Optional[Sequence[str]],
        params: Dict[str, Any],
    ) -> "CampaignSpec":
        from repro.api.registry import get_construction

        kind_spec = get_campaign_kind(kind)
        if models is None:
            from repro.api.executor import DEFAULT_MODELS, DEFAULT_NETSIM_MODELS, DEFAULT_ROUTING_MODELS

            models = {
                "construction": DEFAULT_MODELS,
                "routing": DEFAULT_ROUTING_MODELS,
                "latency": DEFAULT_NETSIM_MODELS,
            }.get(kind_spec.key, DEFAULT_MODELS)
        resolved_models = tuple(get_construction(key).key for key in models)
        # Resolve registry-key params eagerly (typo -> KeyError here, and
        # the canonical form always holds the normalised key).
        params = dict(params)
        if "router" in params and params["router"] is not None:
            from repro.routing.registry import get_router

            params["router"] = get_router(params["router"]).key
        for name in ("traffic", "arrival"):
            if name in params and params[name] is not None:
                from repro.routing.traffic import get_traffic

                params[name] = get_traffic(params[name]).key
        spec = cls(
            kind=kind_spec.key,
            axis=tuple(float(x) for x in axis),
            trials=int(trials),
            models=resolved_models,
            params=params,
        )
        spec.plan_check()
        return spec

    # -- identity -------------------------------------------------------------------

    def canonical(self) -> Dict[str, Any]:
        """The JSON-stable campaign description (perf knobs excluded)."""
        params = {
            name: canonical_value(value)
            for name, value in sorted(self.params.items())
            if name not in PERF_PARAMS
        }
        return {
            "kind": self.kind,
            "axis": list(self.axis),
            "trials": self.trials,
            "models": list(self.models),
            "params": params,
            "code": CODE_VERSION,
        }

    def fingerprint(self) -> str:
        """Content hash of :meth:`canonical` (full sha256 hex digest)."""
        return _digest(self.canonical())

    @property
    def total_trials(self) -> int:
        """Planned trial count: ``len(axis) * trials``."""
        return len(self.axis) * self.trials

    # -- planning -------------------------------------------------------------------

    def plan_check(self) -> None:
        """Plan one point eagerly so bad params fail at spec build time."""
        probe = dataclasses.replace(self, axis=self.axis[:1], trials=1)
        list(get_campaign_kind(self.kind).planner(probe))

    def plan(self) -> List[TrialDescriptor]:
        """Expand into keyed trial descriptors, in (point, trial) order."""
        return list(self.iter_plan())

    def iter_plan(self) -> Iterator[TrialDescriptor]:
        """Stream keyed trial descriptors in (point, trial) order.

        A million-trial campaign plans to ~hundreds of MB if held as a
        list; the runner and workers iterate this instead, keeping only
        the (point, trial) cells and completed-key set resident.
        """
        kind = get_campaign_kind(self.kind)
        for spec in kind.planner(self):
            yield TrialDescriptor(
                key=trial_key(kind.key, spec),
                point=spec.point_index,
                trial=spec.trial,
                x=self.axis[spec.point_index],
                seed=spec.seed,
                spec=spec,
            )

    def codec(self) -> Any:
        """The row codec of this campaign's kind."""
        return get_campaign_kind(self.kind).codec(self)

    # -- wire form (TCP workers receive the canonical dict) -------------------------

    @classmethod
    def from_canonical(cls, payload: Mapping[str, Any]) -> "CampaignSpec":
        """Rebuild a spec from its :meth:`canonical` dict (wire form).

        Typed option values arrive as ``{"__type__": ClassName, ...}``
        dicts and are revived through the owning registry's
        ``make_options`` -- remote workers therefore support exactly the
        registered workloads (custom in-process registrations do not
        travel over the wire; run those through the local transport).
        """
        if payload.get("code") != CODE_VERSION:
            raise CampaignError(
                f"campaign code version {payload.get('code')!r} does not match "
                f"this worker's {CODE_VERSION!r}"
            )
        params = {
            name: _revive_param(name, value, dict(payload.get("params", {})))
            for name, value in dict(payload.get("params", {})).items()
        }
        return cls(
            kind=str(payload["kind"]),
            axis=tuple(float(x) for x in payload["axis"]),
            trials=int(payload["trials"]),
            models=tuple(str(m) for m in payload["models"]),
            params=params,
        )


def _revive_param(name: str, value: Any, params: Mapping[str, Any]) -> Any:
    """Revive one canonical param value (see :meth:`CampaignSpec.from_canonical`)."""
    if not isinstance(value, Mapping) or "__type__" not in value:
        return value
    fields = {k: v for k, v in value.items() if k != "__type__"}
    if name in ("traffic_options", "arrival_options"):
        from repro.routing.traffic import get_traffic

        owner = params.get("arrival" if name == "arrival_options" else "traffic", "uniform")
        return get_traffic(str(owner)).make_options(None, fields)
    if name == "router_options":
        from repro.routing.registry import get_router

        return get_router(str(params.get("router", "extended-ecube"))).make_options(
            None, fields
        )
    raise CampaignError(f"cannot revive campaign param {name!r} of type {value['__type__']!r}")


# -- built-in kinds -----------------------------------------------------------------


def _plan_construction(campaign: CampaignSpec) -> Iterator[Any]:
    from repro.api.executor import SweepExecutor

    executor = SweepExecutor(campaign.models, workers=1)
    return executor.iter_plan(
        [int(x) for x in campaign.axis], campaign.trials, **campaign.params
    )


def _plan_routing(campaign: CampaignSpec) -> Iterator[Any]:
    from repro.api.executor import SweepExecutor

    executor = SweepExecutor(campaign.models, workers=1)
    return executor.iter_plan_routing(
        [int(x) for x in campaign.axis], campaign.trials, **campaign.params
    )


def _plan_latency(campaign: CampaignSpec) -> Iterator[Any]:
    from repro.api.executor import SweepExecutor

    executor = SweepExecutor(campaign.models, workers=1)
    return executor.iter_plan_latency(
        list(campaign.axis), campaign.trials, **campaign.params
    )


def _run_construction_trial(spec: Any) -> Any:
    from repro.api.executor import run_trial

    return run_trial(spec)


def _run_routing_trial(spec: Any) -> Any:
    from repro.api.executor import run_routing_trial

    return run_routing_trial(spec)


def _run_latency_trial(spec: Any) -> Any:
    from repro.api.executor import run_netsim_trial

    return run_netsim_trial(spec)


def _construction_codec(campaign: CampaignSpec) -> Any:
    from repro.campaign.reducers import ConstructionRowCodec

    return ConstructionRowCodec(campaign)


def _routing_codec(campaign: CampaignSpec) -> Any:
    from repro.campaign.reducers import RoutingRowCodec

    return RoutingRowCodec(campaign)


def _latency_codec(campaign: CampaignSpec) -> Any:
    from repro.campaign.reducers import LatencyRowCodec

    return LatencyRowCodec(campaign)


register_campaign_kind(
    CampaignKindSpec(
        key="construction",
        label="Construction metrics",
        runner=_run_construction_trial,
        planner=_plan_construction,
        codec=_construction_codec,
        aliases=("sweep",),
    )
)
register_campaign_kind(
    CampaignKindSpec(
        key="routing",
        label="Routed traffic",
        runner=_run_routing_trial,
        planner=_plan_routing,
        codec=_routing_codec,
        aliases=("route",),
    )
)
register_campaign_kind(
    CampaignKindSpec(
        key="latency",
        label="Latency vs load",
        runner=_run_latency_trial,
        planner=_plan_latency,
        codec=_latency_codec,
        aliases=("netsim", "simulate"),
    )
)
