"""The campaign runner: plan, skip, dispatch, stream, reduce, resume.

One :meth:`CampaignRunner.run` pass:

1. **Plan** -- expand the campaign into content-keyed trial descriptors
   (deterministic, cheap: no scenario is built).
2. **Skip** -- drop every descriptor whose key the store already holds;
   a completed campaign re-runs as a pure no-op scan.
3. **Dispatch** -- chunk the remainder into tasks and feed them to the
   transport with a bounded in-flight window: the parent never holds
   more than ``max_inflight`` chunks of results in memory, which is
   what keeps its RSS flat from 100 trials to 100k.
4. **Stream** -- every completed chunk is durably appended to the store
   *then* folded into the streaming reducer; a ``kill -9`` at any
   instant loses at most the chunk being written.
5. **Reschedule** -- failed tasks (worker death, stall, error) back off
   through a :class:`~repro.serve.retry.RetrySchedule` and requeue;
   tasks silent past ``task_timeout`` are re-dispatched (a late
   duplicate just lands as extra rows -- the reduction dedupes by
   (point, trial), and trials are deterministic, so duplicates are
   bit-identical anyway).

``resume`` is not a separate mode: running against an existing store
directory *is* resuming (the fingerprint check refuses foreign stores).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.reducers import CampaignPoint, StreamingReducer, scenario_chunks
from repro.campaign.spec import CampaignError, CampaignSpec
from repro.campaign.store import CampaignStore
from repro.campaign.transport import Task, get_transport
from repro.serve.retry import RetryPolicy

#: Default backoff for rescheduled tasks: seeded jitter keeps reschedule
#: timing deterministic under test, and a task is abandoned (fatal) only
#: after five attempts.
DEFAULT_RETRY = RetryPolicy(
    max_attempts=5, base_delay=0.05, multiplier=2.0, max_delay=2.0, seed=0
)


class CampaignRunner:
    """Run (or resume) one campaign against a store directory.

    Parameters
    ----------
    spec:
        The campaign description, or ``None`` to adopt the spec recorded
        in an existing store (status/reduce tooling).
    directory:
        Store directory; created on first run, resumed afterwards.
    workers, transport, transport_options:
        Worker count and transport: a registry key (``local`` / ``tcp``)
        or an already-built transport instance (e.g. a ``TcpTransport``
        started ahead of time so its bound port is known to workers).
    chunk_trials:
        Trials per dispatched task (the store's chunk granularity).
    max_inflight:
        Dispatch window; default ``2 * workers`` keeps every worker fed
        while bounding parent memory.
    task_timeout:
        Seconds a dispatched task may stay silent before it is
        re-dispatched (on top of the transport's own liveness checks).
    retry:
        Backoff policy for failed tasks (:data:`DEFAULT_RETRY`).
    max_tasks:
        Stop after completing this many tasks (testing hook: produces a
        valid, partial, resumable store -- a simulated interruption).
    progress:
        Optional callback ``progress(completed_trials, total_trials)``.
    """

    def __init__(
        self,
        spec: Optional[CampaignSpec],
        directory: Union[str, Path],
        *,
        workers: Optional[int] = 1,
        transport: Union[str, Any] = "local",
        transport_options: Optional[Dict[str, Any]] = None,
        chunk_trials: int = 64,
        max_inflight: Optional[int] = None,
        task_timeout: float = 300.0,
        retry: Optional[RetryPolicy] = None,
        max_tasks: Optional[int] = None,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        self.directory = Path(directory)
        if workers is None:
            import os

            workers = os.cpu_count() or 1
        self.workers = max(1, int(workers))
        if isinstance(transport, str):
            self.transport_key: Optional[str] = get_transport(transport).key
            self.transport_instance: Optional[Any] = None
        else:
            self.transport_key = None
            self.transport_instance = transport
        self.transport_options = dict(transport_options or {})
        self.chunk_trials = max(1, int(chunk_trials))
        self.max_inflight = (
            max(1, int(max_inflight)) if max_inflight is not None else 2 * self.workers
        )
        self.task_timeout = task_timeout
        self.retry = retry if retry is not None else DEFAULT_RETRY
        self.max_tasks = max_tasks
        self.progress = progress
        if spec is None:
            store = CampaignStore.open(self.directory)
            spec = store.campaign
            store.close()
        self.spec = spec
        self.store: Optional[CampaignStore] = None
        self.last_summary: Optional[Dict[str, Any]] = None

    # -- store plumbing --------------------------------------------------------------

    def _open_store(self) -> CampaignStore:
        if self.store is None:
            if (self.directory / "manifest.jsonl").exists():
                self.store = CampaignStore.open(self.directory, self.spec)
            else:
                self.store = CampaignStore.create(self.directory, self.spec)
        return self.store

    def close(self) -> None:
        if self.store is not None:
            self.store.close()
            self.store = None

    # -- the run loop ----------------------------------------------------------------

    def run(self) -> Dict[str, Any]:
        """Execute every not-yet-stored trial; returns a summary dict.

        The plan is *streamed*, never materialized: the parent retains
        only each pending trial's ``(point, trial)`` cell plus the
        store's completed-key set, and workers re-plan locally -- parent
        RSS stays flat from 100 trials to a million.
        """
        started = time.monotonic()
        store = self._open_store()
        completed_keys = store.completed_keys()
        todo: List[Tuple[int, int]] = []
        total = 0
        for descriptor in self.spec.iter_plan():
            total += 1
            if descriptor.key not in completed_keys:
                todo.append((descriptor.point, descriptor.trial))
        skipped = total - len(todo)
        summary: Dict[str, Any] = {
            "fingerprint": self.spec.fingerprint(),
            "planned": total,
            "skipped": skipped,
            "executed": 0,
            "rescheduled": 0,
            "chunks_before": len(store.chunk_records),
        }
        if self.progress is not None:
            self.progress(skipped, total)
        if todo:
            executed, rescheduled = self._execute(store, todo, skipped, total)
            summary["executed"] = executed
            summary["rescheduled"] = rescheduled
        summary["chunks_after"] = len(store.chunk_records)
        summary["rows_stored"] = store.rows_stored
        summary["elapsed"] = time.monotonic() - started
        summary["complete"] = self._remaining(store) == 0
        self.last_summary = summary
        return summary

    def _remaining(self, store: CampaignStore) -> int:
        """Count planned trials the store does not hold (streaming scan)."""
        keys = store.completed_keys()
        return sum(1 for d in self.spec.iter_plan() if d.key not in keys)

    def _execute(
        self,
        store: CampaignStore,
        todo: Sequence[Tuple[int, int]],
        already_done: int,
        total: int,
    ) -> Any:
        """Dispatch *todo* through the transport.

        Returns ``(executed_trials, rescheduled_tasks)``; with
        ``max_tasks`` set the executed count reflects the partial run.
        """
        if self.transport_instance is not None:
            transport = self.transport_instance
        else:
            transport = get_transport(self.transport_key).factory(
                self.spec, workers=self.workers, **self.transport_options
            )
        tasks: List[Task] = [
            Task(task_id=index, cells=tuple(todo[at : at + self.chunk_trials]))
            for index, at in enumerate(range(0, len(todo), self.chunk_trials))
        ]
        by_id: Dict[int, Task] = {task.task_id: task for task in tasks}
        next_task_id = len(tasks)
        pending: List[Task] = list(reversed(tasks))  # pop() from the front
        inflight: Dict[int, float] = {}
        delayed: List[Any] = []  # (due_time, task)
        schedules: Dict[int, Any] = {}  # root task_id -> RetrySchedule
        roots: Dict[int, int] = {task.task_id: task.task_id for task in tasks}
        done_keys: set = set()
        rescheduled = 0
        completed_tasks = 0
        executed_trials = 0

        def reschedule(task_id: int, reason: str) -> None:
            nonlocal rescheduled, next_task_id
            task = by_id[task_id]
            root = roots[task_id]
            schedule = schedules.setdefault(root, self.retry.schedule())
            delay = schedule.next_delay()
            if delay is None:
                transport.stop()
                raise CampaignError(
                    f"campaign task {root} failed permanently after "
                    f"{schedule.attempt} attempts: {reason}"
                )
            clone = Task(task_id=next_task_id, cells=task.cells)
            by_id[clone.task_id] = clone
            roots[clone.task_id] = root
            next_task_id += 1
            rescheduled += 1
            delayed.append((time.monotonic() + delay, clone))

        transport.start()
        try:
            while True:
                now = time.monotonic()
                for due, task in list(delayed):
                    if due <= now:
                        delayed.remove((due, task))
                        pending.append(task)
                while (
                    pending
                    and len(inflight) < self.max_inflight
                    and (self.max_tasks is None or completed_tasks + len(inflight) < self.max_tasks)
                ):
                    task = pending.pop()
                    transport.submit(task)
                    inflight[task.task_id] = time.monotonic()
                if not inflight and not pending and not delayed:
                    break
                if self.max_tasks is not None and completed_tasks >= self.max_tasks:
                    break
                event = transport.poll(timeout=0.2)
                if event is None:
                    stale = [
                        task_id
                        for task_id, submitted in inflight.items()
                        if time.monotonic() - submitted > self.task_timeout
                    ]
                    for task_id in stale:
                        del inflight[task_id]
                        reschedule(task_id, "task timed out")
                    continue
                verb, task_id = event[0], event[1]
                if task_id not in inflight:
                    # A late duplicate of a timed-out task: rows are
                    # deterministic, so append them and let the pending
                    # clone (if any) land as deduped extras.
                    if verb != "done":
                        continue
                else:
                    del inflight[task_id]
                if verb == "done":
                    rows = event[2]
                    store.append_rows(rows)
                    completed_tasks += 1
                    by_id.pop(task_id, None)
                    roots.pop(task_id, None)
                    fresh = {
                        key.decode("ascii") for key in rows["key"]
                    } - done_keys
                    done_keys.update(fresh)
                    executed_trials += len(fresh)
                    if self.progress is not None:
                        self.progress(already_done + executed_trials, total)
                else:
                    reschedule(task_id, str(event[2]))
        finally:
            transport.stop()
        return executed_trials, rescheduled

    # -- reductions ------------------------------------------------------------------

    def reduce(self) -> List[CampaignPoint]:
        """Fold the store into per-point streaming moments (means + CIs)."""
        store = self._open_store()
        reducer = StreamingReducer(self.spec)
        for chunk in store.iter_chunks():
            reducer.feed(chunk)
        return reducer.points()

    def sweep_points(self, reducer: Optional[Callable[..., Any]] = None) -> List[Any]:
        """Reduce to legacy sweep points, bit-identical to the in-memory path.

        Rows decode back to the exact scenario-metrics objects the
        workers produced, fold in (point, trial) order, and run through
        the same per-point reducer ``SweepExecutor`` would have used --
        so ``run(campaign=...)`` returns exactly what ``run()`` returns.
        """
        store = self._open_store()
        if reducer is None:
            from repro.api.executor import (
                latency_point_reducer,
                routing_point_reducer,
                sweep_point_reducer,
            )

            reducer = {
                "construction": sweep_point_reducer,
                "routing": routing_point_reducer,
                "latency": latency_point_reducer,
            }[self.spec.kind]
        distribution = str(
            self.spec.params.get(
                "distribution",
                "clustered" if self.spec.kind == "latency" else "random",
            )
        )
        per_point = scenario_chunks(self.spec, store.iter_chunks())
        points: List[Any] = []
        for index, x in enumerate(self.spec.axis):
            value: Any = x if self.spec.kind == "latency" else int(x)
            points.append(reducer(value, distribution, per_point[index]))
        return points


def campaign_status(directory: Union[str, Path]) -> Dict[str, Any]:
    """Progress report for a store directory (no trials run)."""
    store = CampaignStore.open(Path(directory))
    try:
        spec = store.campaign
        keys = store.completed_keys()
        per_point = [0] * len(spec.axis)
        done = 0
        planned = 0
        for descriptor in spec.iter_plan():
            planned += 1
            if descriptor.key in keys:
                done += 1
                per_point[descriptor.point] += 1
        info = store.info()
        info.update(
            {
                "planned": planned,
                "completed": done,
                "remaining": planned - done,
                "complete": done == planned,
                "per_point": per_point,
                "axis": list(spec.axis),
                "trials": spec.trials,
                "models": list(spec.models),
            }
        )
        return info
    finally:
        store.close()


def format_status(status: Dict[str, Any], stream: Any = None) -> str:
    """Render one status dict as the CLI progress block."""
    lines = [
        f"campaign {status['kind']}  fingerprint {status['fingerprint'][:16]}...",
        f"  store     {status['directory']}  ({status['chunks']} chunks, "
        f"{status['rows']} rows)",
        f"  progress  {status['completed']}/{status['planned']} trials"
        + ("  [complete]" if status["complete"] else ""),
    ]
    width = 28
    for index, (x, count) in enumerate(zip(status["axis"], status["per_point"])):
        filled = int(round(width * count / status["trials"])) if status["trials"] else 0
        bar = "#" * filled + "-" * (width - filled)
        lines.append(f"  point {index:>3}  x={x:<10g} [{bar}] {count}/{status['trials']}")
    text = "\n".join(lines)
    if stream is not None:
        print(text, file=stream)
    return text
