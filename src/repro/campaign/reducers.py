"""Row codecs and streaming (Welford) reducers for campaign stores.

One store row is one trial: the content key, sweep position, seed, x
value and every scalar of the trial's per-model metrics, laid out as a
NumPy structured dtype with ``"<label>.<metric>"`` columns.  All metric
fields are scalars, so a row round-trips the metrics object *exactly* --
:meth:`RowCodec.decode` rebuilds the same
:class:`~repro.sim.metrics.ScenarioMetrics` /
``RoutingScenarioMetrics`` / ``NetSimScenarioMetrics`` the worker
produced, which is what lets a campaign-backed sweep return reduced
points bit-identical to the in-memory path.

Aggregation is streaming: :class:`Moments` folds values with Welford's
algorithm (numerically stable, O(1) memory), and
:class:`StreamingReducer` folds rows *strictly in (point, trial) order*
regardless of arrival order -- floating-point folds are
order-sensitive, so out-of-order arrivals are parked in a (bounded by
the out-of-orderness) pending buffer until their slot comes up.  That
ordering discipline is the whole bit-identity story: a resumed, a
re-sharded and an uninterrupted campaign all fold the same values in
the same order.

Confidence intervals use the normal approximation ``mean +/- z * s /
sqrt(n)`` with ``z = 1.96`` (two-sided 95%); at campaign scale
(hundreds-plus trials per point) the t correction is far below the
quoted precision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

#: Two-sided 95% normal quantile (scipy.stats.norm.ppf(0.975)).
Z95 = 1.959963984540054

#: Leading identity columns shared by every campaign row dtype.
ID_FIELDS: Tuple[Tuple[str, str], ...] = (
    ("key", "S32"),
    ("point", "<i4"),
    ("trial", "<i4"),
    ("seed", "<i8"),
    ("x", "<f8"),
    ("distribution", "S32"),
)


@dataclass
class Moments:
    """Streaming mean/variance accumulator (Welford's algorithm)."""

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0

    def update(self, value: float) -> None:
        """Fold one observation."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 below two observations)."""
        if self.count < 2:
            return 0.0
        return self.m2 / (self.count - 1)

    @property
    def ci95(self) -> float:
        """Half-width of the 95% confidence interval on the mean."""
        if self.count < 2:
            return 0.0
        return Z95 * math.sqrt(self.variance / self.count)


def fold_moments(values: Iterable[float]) -> Moments:
    """Fold *values* (in iteration order) into one :class:`Moments`."""
    moments = Moments()
    for value in values:
        moments.update(float(value))
    return moments


def _ascii(value: Any) -> str:
    return value.decode("ascii") if isinstance(value, bytes) else str(value)


class RowCodec:
    """Maps one trial's metrics to/from one structured-array row.

    Subclasses declare ``METRIC_FIELDS`` (per-model ``(name, dtype)``
    columns) and implement ``_encode_model`` / ``_decode_row``.  The
    per-model column order follows the campaign's model tuple with the
    registry labels as prefixes (``"FB.mean_region_size"``).
    """

    #: Per-model scalar columns: (metric attribute, numpy dtype string).
    METRIC_FIELDS: Tuple[Tuple[str, str], ...] = ()
    #: Extra per-model non-numeric columns (kept out of the moments).
    TAG_FIELDS: Tuple[Tuple[str, str], ...] = ()

    def __init__(self, campaign: Any) -> None:
        from repro.api.registry import get_construction

        self.campaign = campaign
        self.labels: Tuple[str, ...] = tuple(
            get_construction(key).label for key in campaign.models
        )
        fields = list(ID_FIELDS)
        for label in self.labels:
            for name, fmt in self.TAG_FIELDS:
                fields.append((f"{label}.{name}", fmt))
            for name, fmt in self.METRIC_FIELDS:
                fields.append((f"{label}.{name}", fmt))
        self.dtype = np.dtype(fields)
        #: Numeric columns the streaming reducer aggregates.
        self.numeric_columns: Tuple[str, ...] = tuple(
            f"{label}.{name}"
            for label in self.labels
            for name, _ in self.METRIC_FIELDS
        )

    def empty(self, count: int) -> np.ndarray:
        """An uninitialised row buffer of *count* rows."""
        return np.zeros(count, dtype=self.dtype)

    def encode_into(self, row: np.ndarray, descriptor: Any, metrics: Any) -> None:
        """Fill one row from a trial *descriptor* and its *metrics*."""
        row["key"] = descriptor.key.encode("ascii")
        row["point"] = descriptor.point
        row["trial"] = descriptor.trial
        row["seed"] = descriptor.seed
        row["x"] = descriptor.x
        row["distribution"] = _ascii(metrics.distribution).encode("ascii")
        for label in self.labels:
            self._encode_model(row, label, metrics.per_model[label])

    def encode(self, descriptor: Any, metrics: Any) -> np.ndarray:
        """One-row convenience wrapper over :meth:`encode_into`."""
        rows = self.empty(1)
        self.encode_into(rows[0], descriptor, metrics)
        return rows

    # -- subclass hooks -------------------------------------------------------------

    def _encode_model(self, row: np.ndarray, label: str, metrics: Any) -> None:
        raise NotImplementedError

    def decode(self, row: np.ndarray) -> Any:
        """Rebuild the exact scenario-metrics object of one row."""
        raise NotImplementedError


class ConstructionRowCodec(RowCodec):
    """Rows of :class:`~repro.sim.metrics.ScenarioMetrics`."""

    METRIC_FIELDS = (
        ("num_regions", "<i8"),
        ("disabled_nonfaulty", "<i8"),
        ("mean_region_size", "<f8"),
        ("rounds", "<i8"),
    )

    def _encode_model(self, row: np.ndarray, label: str, metrics: Any) -> None:
        row[f"{label}.num_regions"] = metrics.num_regions
        row[f"{label}.disabled_nonfaulty"] = metrics.disabled_nonfaulty
        row[f"{label}.mean_region_size"] = metrics.mean_region_size
        row[f"{label}.rounds"] = metrics.rounds

    def decode(self, row: np.ndarray) -> Any:
        from repro.sim.metrics import ConstructionMetrics, ScenarioMetrics

        num_faults = int(row["x"])
        scenario = ScenarioMetrics(
            num_faults=num_faults,
            distribution=_ascii(row["distribution"]),
            seed=int(row["seed"]),
        )
        for label in self.labels:
            scenario.add(
                ConstructionMetrics(
                    model=label,
                    num_faults=num_faults,
                    num_regions=int(row[f"{label}.num_regions"]),
                    disabled_nonfaulty=int(row[f"{label}.disabled_nonfaulty"]),
                    mean_region_size=float(row[f"{label}.mean_region_size"]),
                    rounds=int(row[f"{label}.rounds"]),
                )
            )
        return scenario


class RoutingRowCodec(RowCodec):
    """Rows of :class:`~repro.sim.metrics.RoutingScenarioMetrics`."""

    METRIC_FIELDS = (
        ("enabled", "<i8"),
        ("attempted", "<i8"),
        ("delivered", "<i8"),
        ("delivery_rate", "<f8"),
        ("mean_hops", "<f8"),
        ("mean_detour", "<f8"),
        ("minimal_fraction", "<f8"),
        ("abnormal_fraction", "<f8"),
    )

    def _encode_model(self, row: np.ndarray, label: str, metrics: Any) -> None:
        for name, _ in self.METRIC_FIELDS:
            row[f"{label}.{name}"] = getattr(metrics, name)

    def decode(self, row: np.ndarray) -> Any:
        from repro.sim.metrics import RoutingMetrics, RoutingScenarioMetrics

        params = self.campaign.params
        traffic = str(params.get("traffic", "uniform"))
        router = str(params.get("router", "extended-ecube"))
        num_faults = int(row["x"])
        scenario = RoutingScenarioMetrics(
            num_faults=num_faults,
            distribution=_ascii(row["distribution"]),
            seed=int(row["seed"]),
            traffic=traffic,
            router=router,
        )
        for label in self.labels:
            scenario.add(
                RoutingMetrics(
                    model=label,
                    traffic=traffic,
                    router=router,
                    num_faults=num_faults,
                    enabled=int(row[f"{label}.enabled"]),
                    attempted=int(row[f"{label}.attempted"]),
                    delivered=int(row[f"{label}.delivered"]),
                    delivery_rate=float(row[f"{label}.delivery_rate"]),
                    mean_hops=float(row[f"{label}.mean_hops"]),
                    mean_detour=float(row[f"{label}.mean_detour"]),
                    minimal_fraction=float(row[f"{label}.minimal_fraction"]),
                    abnormal_fraction=float(row[f"{label}.abnormal_fraction"]),
                )
            )
        return scenario


class LatencyRowCodec(RowCodec):
    """Rows of :class:`~repro.sim.metrics.NetSimScenarioMetrics`."""

    TAG_FIELDS = (("sim", "S16"),)
    METRIC_FIELDS = (
        ("enabled", "<i8"),
        ("attempted", "<i8"),
        ("unroutable", "<i8"),
        ("delivered", "<i8"),
        ("in_flight", "<i8"),
        ("cycles_run", "<i8"),
        ("delivery_rate", "<f8"),
        ("mean_latency", "<f8"),
        ("mean_queueing", "<f8"),
        ("mean_hops", "<f8"),
        ("accepted_load", "<f8"),
        ("saturated", "<i1"),
        ("deadlocked", "<i1"),
    )

    def _encode_model(self, row: np.ndarray, label: str, metrics: Any) -> None:
        row[f"{label}.sim"] = metrics.sim.encode("ascii")
        for name, _ in self.METRIC_FIELDS:
            row[f"{label}.{name}"] = getattr(metrics, name)

    def decode(self, row: np.ndarray) -> Any:
        from repro.sim.metrics import NetSimMetrics, NetSimScenarioMetrics

        params = self.campaign.params
        traffic = str(params.get("traffic", "uniform"))
        arrival = str(params.get("arrival", "poisson"))
        router = str(params.get("router", "extended-ecube"))
        num_faults = int(params.get("num_faults", 0))
        load = float(row["x"])
        scenario = NetSimScenarioMetrics(
            load=load,
            num_faults=num_faults,
            distribution=_ascii(row["distribution"]),
            seed=int(row["seed"]),
            traffic=traffic,
            arrival=arrival,
            router=router,
        )
        for label in self.labels:
            scenario.add(
                NetSimMetrics(
                    model=label,
                    traffic=traffic,
                    arrival=arrival,
                    router=router,
                    sim=_ascii(row[f"{label}.sim"]),
                    load=load,
                    num_faults=num_faults,
                    enabled=int(row[f"{label}.enabled"]),
                    attempted=int(row[f"{label}.attempted"]),
                    unroutable=int(row[f"{label}.unroutable"]),
                    delivered=int(row[f"{label}.delivered"]),
                    in_flight=int(row[f"{label}.in_flight"]),
                    delivery_rate=float(row[f"{label}.delivery_rate"]),
                    mean_latency=float(row[f"{label}.mean_latency"]),
                    mean_queueing=float(row[f"{label}.mean_queueing"]),
                    mean_hops=float(row[f"{label}.mean_hops"]),
                    accepted_load=float(row[f"{label}.accepted_load"]),
                    cycles_run=int(row[f"{label}.cycles_run"]),
                    saturated=bool(row[f"{label}.saturated"]),
                    deadlocked=bool(row[f"{label}.deadlocked"]),
                )
            )
        return scenario


@dataclass
class CampaignPoint:
    """Streaming reduction of one sweep point: per-column mean/CI."""

    point: int
    x: float
    n: int
    stats: Dict[str, Moments] = field(default_factory=dict)

    def mean(self, column: str) -> float:
        """Streaming mean of one ``"<label>.<metric>"`` column."""
        return self.stats[column].mean

    def ci95(self, column: str) -> float:
        """95% confidence half-width of one column's mean."""
        return self.stats[column].ci95

    def as_dict(self) -> Dict[str, Any]:
        """JSON form: per-column ``{mean, var, ci95}`` plus identity."""
        return {
            "point": self.point,
            "x": self.x,
            "n": self.n,
            "columns": {
                column: {
                    "mean": moments.mean,
                    "var": moments.variance,
                    "ci95": moments.ci95,
                }
                for column, moments in self.stats.items()
            },
        }


class StreamingReducer:
    """Fold store rows into per-point moments, in (point, trial) order.

    ``feed`` accepts rows in *any* order: each point tracks the next
    expected trial and parks early arrivals in a pending buffer (values
    only, never whole chunks), so memory stays proportional to the
    out-of-orderness, not the campaign.  Duplicate (point, trial) rows
    -- a rescheduled trial that completed twice -- are dropped; trials
    are deterministic, so duplicates are bit-identical anyway.
    """

    def __init__(self, campaign: Any, codec: Optional[Any] = None) -> None:
        self.campaign = campaign
        self.codec = codec if codec is not None else campaign.codec()
        self.columns = self.codec.numeric_columns
        self._points: List[Dict[str, Any]] = [
            {
                "next": 0,
                "pending": {},
                "moments": {column: Moments() for column in self.columns},
                "n": 0,
            }
            for _ in campaign.axis
        ]
        self.rows_seen = 0
        self.duplicates = 0

    def feed(self, rows: np.ndarray) -> None:
        """Fold a chunk of rows (any order, duplicates tolerated)."""
        for row in rows:
            point_index = int(row["point"])
            trial = int(row["trial"])
            state = self._points[point_index]
            if trial < state["next"] or trial in state["pending"]:
                self.duplicates += 1
                continue
            state["pending"][trial] = tuple(
                float(row[column]) for column in self.columns
            )
            self.rows_seen += 1
            while state["next"] in state["pending"]:
                values = state["pending"].pop(state["next"])
                for column, value in zip(self.columns, values):
                    state["moments"][column].update(value)
                state["n"] += 1
                state["next"] += 1

    @property
    def complete(self) -> bool:
        """True once every point folded all of its trials."""
        return all(state["n"] >= self.campaign.trials for state in self._points)

    def points(self) -> List[CampaignPoint]:
        """The reduced points, in axis order."""
        return [
            CampaignPoint(
                point=index,
                x=self.campaign.axis[index],
                n=state["n"],
                stats=dict(state["moments"]),
            )
            for index, state in enumerate(self._points)
        ]


def reduce_rows(campaign: Any, chunks: Iterable[np.ndarray]) -> List[CampaignPoint]:
    """Fold row chunks into reduced points (convenience over the class)."""
    reducer = StreamingReducer(campaign)
    for chunk in chunks:
        reducer.feed(chunk)
    return reducer.points()


def scenario_chunks(
    campaign: Any, chunks: Iterable[np.ndarray]
) -> List[List[Any]]:
    """Decode chunks into per-point scenario lists, in (point, trial) order.

    The exact-object path behind ``CampaignRunner.sweep_points``:
    duplicates drop, trials sort, and each point's list holds the same
    metrics objects (bit-for-bit) an in-memory sweep would have built.
    """
    codec = campaign.codec()
    slots: List[Dict[int, Any]] = [dict() for _ in campaign.axis]
    for chunk in chunks:
        for row in chunk:
            by_trial = slots[int(row["point"])]
            trial = int(row["trial"])
            if trial not in by_trial:
                by_trial[trial] = codec.decode(row)
    return [
        [by_trial[trial] for trial in sorted(by_trial)] for by_trial in slots
    ]
