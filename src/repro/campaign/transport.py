"""Campaign transports: how trial tasks reach workers.

A transport owns worker lifetime and moves :class:`Task`s out and
encoded row chunks back.  The runner is transport-agnostic: it submits
tasks, polls events, and owns retry/reschedule policy; the transport
reports completions and failures (a worker death surfaces as a
``failed`` event for whatever that worker was running).

Two transports are registered, behind the same
:class:`~repro._registry.SpecRegistry` pattern as every other pluggable
axis of the package:

* ``local`` -- persistent ``multiprocessing`` worker processes pulling
  from a shared queue (fork-preferred, like
  :meth:`~repro.api.executor.SweepExecutor._map`).  Workers heartbeat
  between trials; a dead or silent worker is terminated, its task is
  reported failed, and a replacement is spawned.
* ``tcp`` -- an NDJSON shard protocol modeled on
  :mod:`repro.serve.protocol`: remote workers (``repro-mesh campaign
  worker --connect``) dial in, receive the canonical campaign spec,
  re-plan it locally (the plan is deterministic) and pull tasks
  addressed as ``(point, trial)`` cells, returning base64-packed row
  chunks.  One machine today, N machines tomorrow -- the seam is the
  point.

Workers encode rows *worker-side*: the parent only ever handles packed
structured arrays, never metrics objects, which is what keeps parent
RSS flat at million-trial scale.

Event tuples a transport may emit from ``poll``::

    ("done", task_id, rows: np.ndarray)
    ("failed", task_id, reason: str)
"""

from __future__ import annotations

import base64
import json
import multiprocessing
import queue
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro._registry import SpecRegistry
from repro.campaign.spec import (
    CampaignError,
    CampaignSpec,
    TrialDescriptor,
    get_campaign_kind,
)


@dataclass(frozen=True)
class Task:
    """One unit of dispatch: a chunk of ``(point, trial)`` cells.

    Tasks carry trial *identities*, never the expanded specs: every
    worker (local or remote) re-plans the deterministic campaign on
    startup and resolves cells itself, so the parent process never holds
    a materialized plan -- that is what keeps parent RSS flat at
    million-trial scale.
    """

    task_id: int
    cells: Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class TransportSpec:
    """One registered transport: a factory building it for a campaign."""

    key: str
    label: str
    factory: Callable[..., Any]
    aliases: Tuple[str, ...] = ()


_REGISTRY = SpecRegistry("campaign transport")


def register_transport(spec: TransportSpec, replace: bool = False) -> TransportSpec:
    """Register a transport (``replace=True`` to swap an existing one)."""
    return _REGISTRY.register(spec, replace=replace)


def get_transport(key: str) -> TransportSpec:
    """Look up a transport by key or alias (case-insensitive)."""
    return _REGISTRY.get(key)


def available_transports() -> Tuple[str, ...]:
    """The registered transport keys."""
    return _REGISTRY.keys()


# -- local process pool -------------------------------------------------------------


def _local_worker_main(
    worker_id: int,
    campaign: CampaignSpec,
    task_queue: Any,
    event_queue: Any,
    heartbeat_interval: float,
) -> None:
    """Worker loop: pull a task, run its trials, push encoded rows.

    The plan is expanded *here*, once per worker process (same move as
    :func:`run_tcp_worker`): tasks address trials as ``(point, trial)``
    cells, so the parent never materializes descriptors.
    """
    kind = get_campaign_kind(campaign.kind)
    codec = campaign.codec()
    by_cell: Dict[Tuple[int, int], TrialDescriptor] = {
        (d.point, d.trial): d for d in campaign.plan()
    }
    event_queue.put(("hello", worker_id, None))
    while True:
        task = task_queue.get()
        if task is None:
            break
        event_queue.put(("start", worker_id, task.task_id))
        try:
            rows = codec.empty(len(task.cells))
            last_beat = time.monotonic()
            for index, cell in enumerate(task.cells):
                descriptor = by_cell[cell]
                result = kind.runner(descriptor.spec)
                codec.encode_into(rows[index], descriptor, result)
                now = time.monotonic()
                if now - last_beat >= heartbeat_interval:
                    event_queue.put(("hb", worker_id, task.task_id))
                    last_beat = now
            event_queue.put(("done", worker_id, task.task_id, rows))
        except BaseException as exc:  # report, then keep serving
            event_queue.put(
                ("error", worker_id, task.task_id, f"{type(exc).__name__}: {exc}")
            )
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise


class LocalTransport:
    """Persistent process-pool transport with heartbeat failure detection."""

    def __init__(
        self,
        campaign: CampaignSpec,
        *,
        workers: int = 1,
        heartbeat_interval: float = 1.0,
        heartbeat_timeout: float = 60.0,
    ) -> None:
        self.campaign = campaign
        self.workers = max(1, int(workers))
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            self._context = multiprocessing.get_context()
        self._tasks: Any = None
        self._events: Any = None
        self._procs: Dict[int, Any] = {}
        self._last_seen: Dict[int, float] = {}
        self._running: Dict[int, Optional[int]] = {}
        self._next_worker_id = 0
        self.respawns = 0

    def start(self) -> None:
        self._tasks = self._context.Queue()
        self._events = self._context.Queue()
        for _ in range(self.workers):
            self._spawn()

    def _spawn(self) -> None:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        proc = self._context.Process(
            target=_local_worker_main,
            args=(
                worker_id,
                self.campaign,
                self._tasks,
                self._events,
                self.heartbeat_interval,
            ),
            daemon=True,
        )
        proc.start()
        self._procs[worker_id] = proc
        self._last_seen[worker_id] = time.monotonic()
        self._running[worker_id] = None

    def submit(self, task: Task) -> None:
        self._tasks.put(task)

    def poll(self, timeout: float = 0.2) -> Optional[Tuple[Any, ...]]:
        """The next completion/failure event, or ``None`` on timeout.

        Liveness runs on every call: a worker that died or went silent
        mid-task gets its task reported ``failed`` and a replacement
        process spawned (the reschedule policy lives in the runner).
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                event = self._events.get(timeout=remaining if remaining > 0 else 0.01)
            except queue.Empty:
                event = None
            if event is not None:
                verb, worker_id = event[0], event[1]
                self._last_seen[worker_id] = time.monotonic()
                if verb == "start":
                    self._running[worker_id] = event[2]
                elif verb == "done":
                    self._running[worker_id] = None
                    return ("done", event[2], event[3])
                elif verb == "error":
                    self._running[worker_id] = None
                    return ("failed", event[2], event[3])
                # "hello"/"hb" only refresh liveness.
            failure = self._check_liveness()
            if failure is not None:
                return failure
            if time.monotonic() >= deadline:
                return None

    def _check_liveness(self) -> Optional[Tuple[Any, ...]]:
        now = time.monotonic()
        for worker_id, proc in list(self._procs.items()):
            task_id = self._running.get(worker_id)
            dead = not proc.is_alive()
            stalled = (
                task_id is not None
                and now - self._last_seen[worker_id] > self.heartbeat_timeout
            )
            if not dead and not stalled:
                continue
            if stalled and not dead:
                proc.terminate()
            proc.join(timeout=5.0)
            del self._procs[worker_id]
            del self._last_seen[worker_id]
            del self._running[worker_id]
            self.respawns += 1
            self._spawn()
            if task_id is not None:
                reason = "worker stalled" if stalled else "worker died"
                return ("failed", task_id, f"{reason} (pid watchdog)")
        return None

    def stop(self) -> None:
        for _ in self._procs:
            try:
                self._tasks.put_nowait(None)
            except Exception:
                break
        for proc in self._procs.values():
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        self._procs.clear()
        self._running.clear()
        self._last_seen.clear()
        for q in (self._tasks, self._events):
            if q is not None:
                q.cancel_join_thread()
                q.close()


# -- TCP shard protocol -------------------------------------------------------------

#: Wire schema tag (NDJSON frames, one JSON object per line).
TCP_SCHEMA = "repro.campaign.tcp/v1"


def _send_frame(sock: socket.socket, payload: Dict[str, Any]) -> None:
    sock.sendall(json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n")


class _LineReader:
    """Buffered NDJSON frame reader over a socket."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buffer = b""

    def read_frame(self) -> Optional[Dict[str, Any]]:
        while b"\n" not in self._buffer:
            data = self._sock.recv(65536)
            if not data:
                return None
            self._buffer += data
        line, self._buffer = self._buffer.split(b"\n", 1)
        payload = json.loads(line.decode("utf-8"))
        if not isinstance(payload, dict):
            raise CampaignError("malformed campaign TCP frame")
        return payload


class TcpTransport:
    """Shard server: remote workers dial in and pull tasks over NDJSON.

    The parent listens; each connecting worker gets the canonical
    campaign spec, then a stream of ``task`` frames holding ``(point,
    trial)`` cells.  Workers re-plan the campaign locally (the plan is
    deterministic) so trial specs never cross the wire -- only
    identities out, packed rows back.  A dropped connection fails the
    task it was running; the runner reschedules it onto another worker.
    """

    def __init__(
        self,
        campaign: CampaignSpec,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,  # accepted for factory symmetry; peers decide
    ) -> None:
        self.campaign = campaign
        self.host = host
        self.port = port
        self._server: Optional[socket.socket] = None
        self._tasks: "queue.Queue[Optional[Task]]" = queue.Queue()
        self._events: "queue.Queue[Tuple[Any, ...]]" = queue.Queue()
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self.dtype: Optional[np.dtype] = None
        self.connected = 0

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) -- query after :meth:`start`."""
        if self._server is None:
            raise CampaignError("transport is not started")
        return self._server.getsockname()[:2]

    def start(self) -> None:
        if self._server is not None:
            # Idempotent: the CLI starts the transport ahead of the
            # runner to learn (and print) the bound port for workers.
            return
        self.dtype = self.campaign.codec().dtype
        server = socket.create_server((self.host, self.port))
        server.settimeout(0.2)
        self._server = server
        accept = threading.Thread(target=self._accept_loop, daemon=True)
        accept.start()
        self._threads.append(accept)

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._serve_worker, args=(conn,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _serve_worker(self, conn: socket.socket) -> None:
        task: Optional[Task] = None
        try:
            with conn:
                conn.settimeout(60.0)
                _send_frame(
                    conn,
                    {
                        "op": "hello",
                        "schema": TCP_SCHEMA,
                        "spec": self.campaign.canonical(),
                    },
                )
                reader = _LineReader(conn)
                ready = reader.read_frame()
                if ready is None or ready.get("op") != "ready":
                    return
                self.connected += 1
                while not self._stop.is_set():
                    try:
                        task = self._tasks.get(timeout=0.2)
                    except queue.Empty:
                        continue
                    if task is None:
                        _send_frame(conn, {"op": "shutdown"})
                        return
                    _send_frame(
                        conn,
                        {
                            "op": "task",
                            "id": task.task_id,
                            "cells": [list(cell) for cell in task.cells],
                        },
                    )
                    reply = reader.read_frame()
                    if reply is None:
                        raise CampaignError("worker connection closed mid-task")
                    if reply.get("op") == "error":
                        self._events.put(
                            ("failed", task.task_id, str(reply.get("error")))
                        )
                        task = None
                        continue
                    if reply.get("op") != "rows" or reply.get("id") != task.task_id:
                        raise CampaignError(f"unexpected worker frame {reply.get('op')!r}")
                    data = base64.b64decode(reply["data"])
                    rows = np.frombuffer(data, dtype=self.dtype).copy()
                    if len(rows) != int(reply["rows"]):
                        raise CampaignError("worker row count mismatch")
                    self._events.put(("done", task.task_id, rows))
                    task = None
        except (OSError, ValueError, KeyError, CampaignError) as exc:
            if task is not None:
                self._events.put(
                    ("failed", task.task_id, f"worker connection lost: {exc}")
                )

    def submit(self, task: Task) -> None:
        self._tasks.put(task)

    def poll(self, timeout: float = 0.2) -> Optional[Tuple[Any, ...]]:
        try:
            return self._events.get(timeout=timeout)
        except queue.Empty:
            return None

    def stop(self) -> None:
        self._stop.set()
        for _ in range(max(1, self.connected)):
            self._tasks.put(None)
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=2.0)


def run_tcp_worker(
    host: str,
    port: int,
    *,
    max_tasks: Optional[int] = None,
    on_task: Optional[Callable[[int, int], None]] = None,
) -> int:
    """Serve one TCP campaign worker until shutdown; returns tasks done.

    Connects to a :class:`TcpTransport`, rebuilds the campaign from the
    canonical spec in the hello frame, plans it locally and answers
    ``task`` frames with base64-packed row chunks.  *max_tasks* bounds
    the session (testing hook); *on_task* observes ``(task_id, cells)``.
    """
    with socket.create_connection((host, port)) as sock:
        reader = _LineReader(sock)
        hello = reader.read_frame()
        if hello is None or hello.get("op") != "hello":
            raise CampaignError("campaign server did not greet with hello")
        if hello.get("schema") != TCP_SCHEMA:
            raise CampaignError(f"unknown campaign wire schema {hello.get('schema')!r}")
        campaign = CampaignSpec.from_canonical(hello["spec"])
        kind = get_campaign_kind(campaign.kind)
        codec = campaign.codec()
        by_cell = {
            (d.point, d.trial): d for d in campaign.plan()
        }
        _send_frame(sock, {"op": "ready"})
        done = 0
        while max_tasks is None or done < max_tasks:
            frame = reader.read_frame()
            if frame is None or frame.get("op") == "shutdown":
                break
            if frame.get("op") != "task":
                raise CampaignError(f"unexpected server frame {frame.get('op')!r}")
            cells = [(int(p), int(t)) for p, t in frame["cells"]]
            if on_task is not None:
                on_task(int(frame["id"]), len(cells))
            try:
                rows = codec.empty(len(cells))
                for index, cell in enumerate(cells):
                    descriptor = by_cell[cell]
                    result = kind.runner(descriptor.spec)
                    codec.encode_into(rows[index], descriptor, result)
            except Exception as exc:
                _send_frame(
                    sock,
                    {
                        "op": "error",
                        "id": int(frame["id"]),
                        "error": f"{type(exc).__name__}: {exc}",
                    },
                )
                continue
            _send_frame(
                sock,
                {
                    "op": "rows",
                    "id": int(frame["id"]),
                    "rows": int(len(rows)),
                    "data": base64.b64encode(rows.tobytes()).decode("ascii"),
                },
            )
            done += 1
        return done


register_transport(
    TransportSpec(
        key="local",
        label="Local process pool",
        factory=LocalTransport,
        aliases=("process", "pool"),
    )
)
register_transport(
    TransportSpec(
        key="tcp",
        label="TCP shard protocol",
        factory=TcpTransport,
        aliases=("net", "socket"),
    )
)
