"""Pluggable array backends for the hot primitives (one ops facade).

Every hot path of the reproduction bottoms out in a handful of array
primitives: the mask kernel's component labelling and span-fill fixpoints
(:mod:`repro.geometry.masks`), the batch engine's jump-table accumulate
scans and windowed ring-lane traversals (:mod:`repro.routing.engine`), and
the netsim grant/arbitration kernel (:mod:`repro.netsim.simulators`).
This module factors those primitives behind one :class:`ArrayOps` facade
and a backend registry -- the same :class:`~repro._registry.SpecRegistry`
plus env-toggle idiom as ``REPRO_MASK_KERNEL`` / ``REPRO_ROUTE_ENGINE`` /
``REPRO_NETSIM`` -- so a consumer calls ``active_ops().span_fill(mask)``
and never knows which implementation ran.

Registered backends:

* ``numpy`` (default): the vectorized implementations extracted verbatim
  from the consumer modules -- bit-identical to the pre-facade code by
  construction.
* ``numba``: the loop-nest kernels of :mod:`repro._array_loops` wrapped in
  ``numba.njit(cache=True)``.  Compilation happens once per process (and
  is cached on disk across processes); when :mod:`numba` is not importable
  the backend *resolves to the numpy ops* instead of failing, so selecting
  it is always safe.
* ``loops``: the same :mod:`repro._array_loops` kernels uninterpreted --
  slow, but it exercises exactly the code the JIT compiles, which is what
  the differential suite pins against the numpy backend and the set-based
  oracles on numba-less environments.
* ``cupy``: a gated stub.  Registered only so the key resolves; until
  device kernels land it also resolves to the numpy ops (and the probe
  reports whether :mod:`cupy` is importable at all).

Selection mirrors the engine/simulator toggles: the environment variable
``REPRO_ARRAY_BACKEND`` (read once at import), :func:`set_default_backend`
/ :func:`use_backend` at runtime, ``backend=...`` per call on
:meth:`repro.api.RoutingSession.route` / ``session.simulate``, and
``--backend`` on the CLI ``route`` / ``sweep`` / ``simulate`` commands.
``auto`` means numpy today.  The *effective* backend (after any fallback)
is what lands in ``RoutingStats.backend`` / ``NetSimStats.backend`` /
``session.cache_info["array_backend"]`` -- stats never claim a JIT ran
when it did not.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import _array_loops
from repro._registry import SpecRegistry

try:  # pragma: no cover - exercised implicitly depending on the environment
    from scipy import ndimage as _ndimage
except ImportError:  # pragma: no cover
    _ndimage = None

_shift_impl = None


def _shift(mask: np.ndarray, dx: int, dy: int, wrap: bool, fill=None) -> np.ndarray:
    """The shared shifted-view primitive of :mod:`repro.core.labelling`.

    Imported lazily: ``repro.core`` transitively imports this module (via
    the mask kernel), so a top-level import would be circular.
    """
    global _shift_impl
    if _shift_impl is None:
        from repro.core.labelling import _shift as shift

        _shift_impl = shift
    return _shift_impl(mask, dx, dy, wrap, fill)


#: Neighbour offsets of the two adjacency notions used by the paper.
_OFFSETS_4: Tuple[Tuple[int, int], ...] = ((1, 0), (-1, 0), (0, 1), (0, -1))
_OFFSETS_8: Tuple[Tuple[int, int], ...] = _OFFSETS_4 + (
    (1, 1),
    (1, -1),
    (-1, 1),
    (-1, -1),
)


# -- numpy backend: labelling ---------------------------------------------------------


def propagate_labels(mask: np.ndarray, offsets) -> np.ndarray:
    """Minimum-label propagation over *mask* using shifted-array minima."""
    width, height = mask.shape
    sentinel = width * height
    labels = np.where(
        mask, np.arange(sentinel, dtype=np.int64).reshape(width, height), sentinel
    )
    while True:
        best = labels
        for dx, dy in offsets:
            best = np.minimum(best, _shift(labels, dx, dy, wrap=False, fill=sentinel))
        best = np.where(mask, best, sentinel)
        if np.array_equal(best, labels):
            break
        labels = best
    return labels


def canonicalise_labels(labels: np.ndarray, count: int) -> np.ndarray:
    """Relabel 1..count in ascending order of each component's first cell.

    The first cell of a component in a C-order scan of the ``[x, y]`` array
    is its lexicographically smallest node, so the canonical order matches
    the discovery order of the BFS oracles (sorted seed nodes).
    """
    if count == 0:
        return labels
    flat = labels.ravel()
    occupied = np.flatnonzero(flat)
    first = np.full(count + 1, flat.size, dtype=np.int64)
    np.minimum.at(first, flat[occupied], occupied)
    order = np.argsort(first[1:], kind="stable")
    remap = np.zeros(count + 1, dtype=np.int32)
    remap[order + 1] = np.arange(1, count + 1, dtype=np.int32)
    return remap[labels]


def _label_components_numpy(mask: np.ndarray, connectivity: int):
    """Canonically labelled components of a (tight) boolean mask.

    Uses :mod:`scipy.ndimage`'s C labelling when importable, the
    shifted-array minimum propagation otherwise; both are canonicalised to
    ascending lexicographic order of each component's minimum node.
    """
    if _ndimage is not None:
        structure = np.ones((3, 3), dtype=bool) if connectivity == 8 else None
        raw, count = _ndimage.label(mask, structure=structure)
        raw = raw.astype(np.int32, copy=False)
    else:
        offsets = _OFFSETS_8 if connectivity == 8 else _OFFSETS_4
        propagated = propagate_labels(mask, offsets)
        roots = np.unique(propagated[mask])
        count = int(roots.size)
        raw = np.zeros(mask.shape, dtype=np.int32)
        raw[mask] = np.searchsorted(roots, propagated[mask]) + 1
    return canonicalise_labels(raw, int(count)), int(count)


# -- numpy backend: span fills and hulls ----------------------------------------------


def _span_fill_axis(mask: np.ndarray, axis: int) -> np.ndarray:
    """Fill, along *axis*, every cell between the first and last occupied."""
    n = mask.shape[axis]
    occupied = mask.any(axis=axis)
    first = mask.argmax(axis=axis)
    if axis == 1:
        last = n - 1 - mask[:, ::-1].argmax(axis=1)
        index = np.arange(n)
        span = (index[None, :] >= first[:, None]) & (index[None, :] <= last[:, None])
        return span & occupied[:, None]
    last = n - 1 - mask[::-1, :].argmax(axis=0)
    index = np.arange(n)
    span = (index[:, None] >= first[None, :]) & (index[:, None] <= last[None, :])
    return span & occupied[None, :]


def _span_fill_numpy(mask: np.ndarray) -> np.ndarray:
    """One concave-section fill pass: row spans union column spans."""
    return _span_fill_axis(mask, 0) | _span_fill_axis(mask, 1)


def _hull_fixpoint_numpy(mask: np.ndarray) -> np.ndarray:
    """The minimum orthogonal convex hull of *mask* (span-fill fixed point)."""
    current = mask
    while True:
        filled = _span_fill_numpy(current)
        if np.array_equal(filled, current):
            return filled
        current = filled


def _nonconvex_labels_numpy(labels: np.ndarray, count: int) -> np.ndarray:
    """Labels (``1..count``) whose cell sets violate Definition 1.

    Both line checks run over *all* regions at once: the occupied cells are
    sorted by ``(label, x, y)`` (free: ``np.nonzero`` scan order) and by
    ``(label, y, x)`` (one lexsort), and a region is flagged when two
    consecutive cells of the same label and line differ by more than one.
    """
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    xs, ys = np.nonzero(labels)
    lab = labels[xs, ys]
    order = np.argsort(lab, kind="stable")  # -> sorted by (label, x, y)
    lab_c, xs_c, ys_c = lab[order], xs[order], ys[order]
    same_col = (lab_c[1:] == lab_c[:-1]) & (xs_c[1:] == xs_c[:-1])
    col_gaps = same_col & (ys_c[1:] - ys_c[:-1] != 1)
    order = np.lexsort((xs, ys, lab))  # -> sorted by (label, y, x)
    lab_r, xs_r, ys_r = lab[order], xs[order], ys[order]
    same_row = (lab_r[1:] == lab_r[:-1]) & (ys_r[1:] == ys_r[:-1])
    row_gaps = same_row & (xs_r[1:] - xs_r[:-1] != 1)
    return np.unique(np.concatenate((lab_c[1:][col_gaps], lab_r[1:][row_gaps])))


# -- numpy backend: routing-engine scans ----------------------------------------------


def _jump_tables_numpy(disabled: np.ndarray):
    """The four next-blocked-cell tables, one accumulate scan each."""
    width, height = disabled.shape
    xs = np.arange(width, dtype=np.int64)[:, None]
    ys = np.arange(height, dtype=np.int64)[None, :]
    blocked_x = np.where(disabled, xs, width)
    at_or_east = np.minimum.accumulate(blocked_x[::-1], axis=0)[::-1]
    east = np.vstack([at_or_east[1:], np.full((1, height), width, dtype=np.int64)])
    blocked_x = np.where(disabled, xs, -1)
    at_or_west = np.maximum.accumulate(blocked_x, axis=0)
    west = np.vstack([np.full((1, height), -1, dtype=np.int64), at_or_west[:-1]])
    blocked_y = np.where(disabled, ys, height)
    at_or_north = np.minimum.accumulate(blocked_y[:, ::-1], axis=1)[:, ::-1]
    north = np.hstack(
        [at_or_north[:, 1:], np.full((width, 1), height, dtype=np.int64)]
    )
    blocked_y = np.where(disabled, ys, -1)
    at_or_south = np.maximum.accumulate(blocked_y, axis=1)
    south = np.hstack([np.full((width, 1), -1, dtype=np.int64), at_or_south[:, :-1]])
    return east, west, north, south


def _scan_lanes_numpy(
    ring_x: np.ndarray,
    ring_y: np.ndarray,
    valid: np.ndarray,
    geo_bits: np.ndarray,
    width: int,
    height: int,
    disabled: np.ndarray,
    message_type: np.ndarray,
    step: np.ndarray,
    entry: np.ndarray,
    dest_x: np.ndarray,
    dest_y: np.ndarray,
    lengths: np.ndarray,
    starts: np.ndarray,
    lane_lo: int,
    lane_hi: int,
):
    """Scan ring lanes ``lane_lo+1 .. lane_hi`` of every row at once.

    The padded ``(rows x lanes)`` matrix form: every candidate lane of
    every row is materialised and the first exit / first failure fall out
    of two ``argmax`` reductions (default ``lane_lo + 1`` when a row has
    neither -- the ``argmax`` of all-``False``).
    """
    lanes = np.arange(lane_lo + 1, lane_hi + 1, dtype=np.int64)
    row_length = lengths[:, None]
    relative = (entry[:, None] + step[:, None] * lanes[None, :]) % row_length
    index = starts[:, None] + relative
    in_ring = lanes[None, :] <= row_length
    node_x = ring_x[index]
    node_y = ring_y[index]
    live = valid[index]
    dxc = dest_x[:, None]
    dyc = dest_y[:, None]
    # ``_passed_region``: the geometric half is precomputed per ring node
    # as one bit per message type; the destination half compares the x
    # coordinate for WE/EW rows (types 0 and 1) and the y coordinate for
    # SN/NS rows.
    geo = (geo_bits[index] >> message_type[:, None]) & 1 != 0
    passed = geo | np.where(message_type[:, None] <= 1, node_x == dxc, node_y == dyc)
    # Vectorized ``ecube_next_hop(node, destination)``: the follow-up hop
    # is clear when the node *is* the destination or its next e-cube cell
    # is enabled.  Off-mesh lanes are masked by ``live``; the min/max
    # only keeps their gather in bounds.
    step_x = np.sign(dxc - node_x)
    step_y = np.where(step_x == 0, np.sign(dyc - node_y), 0)
    follow_x = np.minimum(np.maximum(node_x + step_x, 0), width - 1)
    follow_y = np.minimum(np.maximum(node_y + step_y, 0), height - 1)
    at_destination = (step_x == 0) & (step_y == 0)
    clear = at_destination | ~disabled[follow_x, follow_y]
    exit_ok = live & passed & clear & in_ring
    failed = ~live & in_ring
    return (
        exit_ok.any(axis=1),
        lane_lo + 1 + exit_ok.argmax(axis=1),
        failed.any(axis=1),
        lane_lo + 1 + failed.argmax(axis=1),
    )


# -- numpy backend: netsim arbitration ------------------------------------------------


def _grant_messages_numpy(
    requested: np.ndarray, active: np.ndarray, occupied: np.ndarray
) -> np.ndarray:
    """One netsim arbitration cycle: grant each free channel's lowest bidder.

    Sorts by ``(channel, message index)`` -- the first row of each channel
    group is that channel's lowest-index requester -- and keeps the leaders
    whose channel buffer is free.  Returns the granted message indices
    ordered by requested channel ascending.
    """
    perm = np.lexsort((active, requested))
    sorted_requests = requested[perm]
    leader = np.ones(sorted_requests.size, dtype=bool)
    leader[1:] = sorted_requests[1:] != sorted_requests[:-1]
    grantable = leader & ~occupied[sorted_requests]
    return active[perm[grantable]]


# -- the ops facade -------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class ArrayOps:
    """The primitive set one backend implements.

    ``key`` is the *effective* backend -- a backend that resolved by
    falling back (numba without numba installed, the cupy stub) carries
    ``"numpy"`` here, so stats labels never claim an implementation that
    did not run.  All operations are bit-identical across backends; the
    differential suite in ``tests/test_array_ops.py`` is the witness.
    """

    key: str
    #: ``(tight bool mask, connectivity) -> (int32 labels 1..count, count)``
    #: in canonical order (ascending lexicographic minimum node).
    label_components: Callable
    #: ``bool mask -> bool mask``: row spans union column spans.
    span_fill: Callable
    #: ``bool mask -> bool mask``: span fill iterated to its fixed point.
    hull_fixpoint: Callable
    #: ``(labels, count) -> ascending label array`` of Definition-1 violators.
    nonconvex_labels: Callable
    #: ``disabled mask -> (east, west, north, south)`` int64 tables.
    jump_tables: Callable
    #: The windowed ring-lane traversal scan of the batch routing engine.
    scan_lanes: Callable
    #: ``(requested, active, occupied) -> granted`` netsim arbitration.
    grant_messages: Callable


def _numpy_ops() -> ArrayOps:
    return ArrayOps(
        key="numpy",
        label_components=_label_components_numpy,
        span_fill=_span_fill_numpy,
        hull_fixpoint=_hull_fixpoint_numpy,
        nonconvex_labels=_nonconvex_labels_numpy,
        jump_tables=_jump_tables_numpy,
        scan_lanes=_scan_lanes_numpy,
        grant_messages=_grant_messages_numpy,
    )


def _loops_ops() -> ArrayOps:
    return ArrayOps(
        key="loops",
        label_components=_array_loops.label_components,
        span_fill=_array_loops.span_fill,
        hull_fixpoint=_array_loops.hull_fixpoint,
        nonconvex_labels=_array_loops.nonconvex_labels,
        jump_tables=_array_loops.jump_tables,
        scan_lanes=_array_loops.scan_lanes,
        grant_messages=_array_loops.grant_messages,
    )


def _numba_ops() -> ArrayOps:
    """JIT-compile the loop kernels (only called when numba imports).

    ``cache=True`` persists the compiled machine code next to the source,
    so repeat processes skip compilation entirely; within a process each
    kernel compiles once on first call per argument-type signature.
    """
    import numba

    def jit(function):
        return numba.njit(cache=True)(function)

    return ArrayOps(
        key="numba",
        label_components=jit(_array_loops.label_components),
        span_fill=jit(_array_loops.span_fill),
        hull_fixpoint=jit(_array_loops.hull_fixpoint),
        nonconvex_labels=jit(_array_loops.nonconvex_labels),
        jump_tables=jit(_array_loops.jump_tables),
        scan_lanes=jit(_array_loops.scan_lanes),
        grant_messages=jit(_array_loops.grant_messages),
    )


# -- the backend registry -------------------------------------------------------------


_available_probe_cache: Dict[str, bool] = {}


def _probe_import(module: str) -> bool:
    """Whether *module* imports cleanly (memoised; probed lazily, never at
    ``repro`` import time, so numpy-only users pay no numba import cost)."""
    cached = _available_probe_cache.get(module)
    if cached is None:
        import importlib

        try:
            importlib.import_module(module)
        except Exception:
            cached = False
        else:
            cached = True
        _available_probe_cache[module] = cached
    return cached


def _always(available: bool = True) -> Callable[[], bool]:
    def probe() -> bool:
        return available

    return probe


def _probe_numba() -> bool:
    return _probe_import("numba")


def _probe_cupy() -> bool:
    return _probe_import("cupy")


@dataclass(frozen=True, eq=False)
class BackendSpec:
    """One registered array backend."""

    key: str
    label: str
    description: str
    #: Builds the backend's :class:`ArrayOps` (called at most once; only
    #: when :meth:`available` says the backend can run).
    loader: Callable[[], ArrayOps]
    #: Whether the backend's dependencies are importable *now*.
    probe: Callable[[], bool]
    aliases: Tuple[str, ...] = ()

    def available(self) -> bool:
        """Whether selecting this backend runs its own implementation
        (``False`` means selection silently falls back to numpy ops)."""
        return bool(self.probe())

    def ops(self) -> ArrayOps:
        """This backend's (memoised) ops, falling back to numpy ops when
        the backend cannot run here."""
        cached = _OPS_CACHE.get(self.key)
        if cached is None:
            cached = self.loader() if self.available() else _BACKENDS.get("numpy").ops()
            _OPS_CACHE[self.key] = cached
        return cached


_BACKENDS = SpecRegistry("array backend")
_OPS_CACHE: Dict[str, ArrayOps] = {}

#: The resolved ops of the ambient selection; rebuilt after every
#: default-backend change so the hot paths pay one ``None`` check, not a
#: registry lookup, per call.
_active_ops: Optional[ArrayOps] = None


def _invalidate_active() -> None:
    global _active_ops
    _active_ops = None


def register_backend(spec: BackendSpec, replace: bool = False) -> BackendSpec:
    """Register *spec* (and its aliases) in the global backend registry.

    Registration makes the backend selectable through
    ``REPRO_ARRAY_BACKEND`` / :func:`use_backend` / the CLI ``--backend``
    option.  Raises ``ValueError`` on key collisions unless *replace*.
    Cache invalidation happens only after the registry accepts the spec,
    so a rejected registration leaves the resolved ops untouched.
    """
    registered = _BACKENDS.register(spec, replace)
    _OPS_CACHE.pop(SpecRegistry.normalise(spec.key), None)
    _invalidate_active()
    return registered


def get_backend(key: str) -> BackendSpec:
    """Look up an array backend by key or alias (case-insensitive)."""
    return _BACKENDS.get(key)


def available_backends() -> List[BackendSpec]:
    """Return every registered backend spec, in registration order."""
    return _BACKENDS.available()


def backend_keys() -> Tuple[str, ...]:
    """Return the registered backend keys, in registration order."""
    return _BACKENDS.keys()


def backend_status() -> Dict[str, bool]:
    """Registered backend key -> whether its own implementation can run.

    Probing is lazy but happens here, so calling this imports numba/cupy
    if present; :func:`repro.array_backends` is the import-free view.
    """
    return {spec.key: spec.available() for spec in available_backends()}


register_backend(
    BackendSpec(
        key="numpy",
        label="NP",
        description="vectorized NumPy implementations (the default)",
        loader=_numpy_ops,
        probe=_always(True),
        aliases=("np", "vectorized"),
    )
)
register_backend(
    BackendSpec(
        key="numba",
        label="NB",
        description=(
            "numba.njit-compiled loop kernels (cached); falls back to the "
            "numpy ops when numba is not importable"
        ),
        loader=_numba_ops,
        probe=_probe_numba,
        aliases=("jit",),
    )
)
register_backend(
    BackendSpec(
        key="loops",
        label="LP",
        description=(
            "uncompiled loop kernels (the exact code the numba backend "
            "JITs; slow -- differential testing only)"
        ),
        loader=_loops_ops,
        probe=_always(True),
        aliases=("python", "reference"),
    )
)
register_backend(
    BackendSpec(
        key="cupy",
        label="CP",
        description=(
            "GPU stub, gated on cupy importability; resolves to the numpy "
            "ops until device kernels land"
        ),
        loader=_numpy_ops,
        probe=_probe_cupy,
        aliases=("gpu",),
    )
)


# -- default-backend switch (mirrors the engine/simulator toggles) --------------------

_default_backend = SpecRegistry.normalise(os.environ.get("REPRO_ARRAY_BACKEND", "auto"))


def default_backend() -> str:
    """The ambient backend selection (``auto`` unless switched)."""
    return _default_backend


def set_default_backend(key: str) -> str:
    """Set the ambient backend selection; returns the previous value.

    *key* is ``auto`` (numpy today) or any registered backend key/alias
    (validated eagerly, like the registry lookups).
    """
    global _default_backend
    key = SpecRegistry.normalise(key)
    if key != "auto":
        key = get_backend(key).key
    previous = _default_backend
    _default_backend = key
    _invalidate_active()
    return previous


@contextmanager
def use_backend(key: str):
    """Temporarily switch the ambient backend selection (context manager).

    Mirrors :func:`repro.routing.engine.use_engine`::

        with use_backend("numba"):
            stats = session.route("mfp", messages=100_000)

    Selection is always lenient: a backend whose dependencies are missing
    resolves to the numpy ops instead of raising (only unknown *keys*
    raise), so ``REPRO_ARRAY_BACKEND=numba`` is safe everywhere.
    """
    previous = set_default_backend(key)
    try:
        yield
    finally:
        set_default_backend(previous)


def resolve_backend(key: Optional[str] = None) -> BackendSpec:
    """Resolve a selection (``None`` = the ambient default) to its spec."""
    normalised = SpecRegistry.normalise(key) if key is not None else default_backend()
    if normalised == "auto":
        normalised = "numpy"
    return get_backend(normalised)


def active_ops() -> ArrayOps:
    """The ops of the ambient backend selection (memoised until switched)."""
    global _active_ops
    ops = _active_ops
    if ops is None:
        ops = _active_ops = resolve_backend(None).ops()
    return ops


def active_backend_key() -> str:
    """The *effective* key of the ambient selection (after any fallback)."""
    return active_ops().key
