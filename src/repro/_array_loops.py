"""Loop-nest kernels of the array-backend facade (njit-able reference).

Every hot primitive :mod:`repro._array_ops` dispatches -- component
labelling, span-fill fixpoints, jump-table scans, traversal-window lane
scans and the netsim grant kernel -- has a second implementation here as a
plain scalar loop nest over NumPy arrays.  The functions are written in
the strict subset of Python that Numba's ``nopython`` mode compiles
(explicit loops, preallocated output arrays, no dicts/sets/closures, no
fancy indexing, no cross-function calls), which gives them two jobs:

* the **numba backend** of :mod:`repro._array_ops` wraps each function in
  ``numba.njit(cache=True)`` -- one compilation per process (cached on
  disk across processes), then machine-code speed;
* the **loops backend** registers the same functions *uninterpreted*, so
  the exact code the JIT compiles is exercised by the differential test
  suite (``tests/test_array_ops.py``) on every environment, including the
  ones where numba is not installed.

Each function must be *bit-identical* to its vectorized NumPy counterpart
in :mod:`repro._array_ops` -- same values, same tie-breaking, same
first-occurrence semantics -- which the Hypothesis suites assert against
the set-based oracles as well.  Keep any change to a kernel here in
lockstep with the NumPy implementation.
"""

from __future__ import annotations

import numpy as np


def label_components(mask: np.ndarray, connectivity: int):
    """Label the connected components of a boolean mask (canonical order).

    Stack-based flood fill in C-scan order: the first cell of a component
    encountered by the ``(x, y)`` scan is its lexicographically smallest
    node, so labels ``1..count`` come out directly in the canonical order
    :func:`repro._array_ops.canonicalise_labels` produces -- no relabel
    pass needed.  *connectivity* is 8 (diagonal contact merges) or 4.
    """
    width, height = mask.shape
    labels = np.zeros((width, height), dtype=np.int32)
    stack_x = np.empty(width * height, dtype=np.int64)
    stack_y = np.empty(width * height, dtype=np.int64)
    count = 0
    for seed_x in range(width):
        for seed_y in range(height):
            if not mask[seed_x, seed_y] or labels[seed_x, seed_y] != 0:
                continue
            count += 1
            labels[seed_x, seed_y] = count
            stack_x[0] = seed_x
            stack_y[0] = seed_y
            top = 1
            while top > 0:
                top -= 1
                x = stack_x[top]
                y = stack_y[top]
                for dx in range(-1, 2):
                    for dy in range(-1, 2):
                        if dx == 0 and dy == 0:
                            continue
                        if connectivity == 4 and dx != 0 and dy != 0:
                            continue
                        nx = x + dx
                        ny = y + dy
                        if nx < 0 or nx >= width or ny < 0 or ny >= height:
                            continue
                        if mask[nx, ny] and labels[nx, ny] == 0:
                            labels[nx, ny] = count
                            stack_x[top] = nx
                            stack_y[top] = ny
                            top += 1
    return labels, count


def span_fill(mask: np.ndarray) -> np.ndarray:
    """One concave-section fill pass: row spans union column spans.

    Both passes read the *input* mask (not the partially built output), so
    the result equals the vectorized ``row_fill(mask) | column_fill(mask)``.
    """
    width, height = mask.shape
    out = np.zeros((width, height), dtype=np.bool_)
    for x in range(width):
        first = -1
        last = -1
        for y in range(height):
            if mask[x, y]:
                if first < 0:
                    first = y
                last = y
        if first >= 0:
            for y in range(first, last + 1):
                out[x, y] = True
    for y in range(height):
        first = -1
        last = -1
        for x in range(width):
            if mask[x, y]:
                if first < 0:
                    first = x
                last = x
        if first >= 0:
            for x in range(first, last + 1):
                out[x, y] = True
    return out


def hull_fixpoint(mask: np.ndarray) -> np.ndarray:
    """The minimum orthogonal convex hull of *mask* (span-fill fixed point).

    Runs alternating in-place row/column span fills until a full sweep adds
    nothing.  Every filled cell lies between two member cells of a line, so
    it belongs to *any* orthogonal convex superset; orthogonal convex sets
    are closed under intersection, so the fixed point is the unique minimum
    hull -- the same set the vectorized span-fill iteration converges to.
    """
    width, height = mask.shape
    out = mask.copy()
    changed = True
    while changed:
        changed = False
        for x in range(width):
            first = -1
            last = -1
            for y in range(height):
                if out[x, y]:
                    if first < 0:
                        first = y
                    last = y
            if first >= 0:
                for y in range(first, last + 1):
                    if not out[x, y]:
                        out[x, y] = True
                        changed = True
        for y in range(height):
            first = -1
            last = -1
            for x in range(width):
                if out[x, y]:
                    if first < 0:
                        first = x
                    last = x
            if first >= 0:
                for x in range(first, last + 1):
                    if not out[x, y]:
                        out[x, y] = True
                        changed = True
    return out


def nonconvex_labels(labels: np.ndarray, count: int) -> np.ndarray:
    """Labels (``1..count``) whose cell sets violate Definition 1.

    Two grid sweeps with per-label last-seen trackers: a label is flagged
    when two consecutive same-line cells of it are more than one step
    apart, exactly the gap test of the vectorized sort-based version.
    Returns the flagged labels ascending (``np.unique`` order).
    """
    width, height = labels.shape
    flagged = np.zeros(count + 1, dtype=np.bool_)
    last_x = np.full(count + 1, -2, dtype=np.int64)
    last_y = np.full(count + 1, -2, dtype=np.int64)
    for x in range(width):
        for y in range(height):
            label = labels[x, y]
            if label > 0:
                if last_x[label] == x and last_y[label] != y - 1:
                    flagged[label] = True
                last_x[label] = x
                last_y[label] = y
    for label in range(count + 1):
        last_x[label] = -2
        last_y[label] = -2
    for y in range(height):
        for x in range(width):
            label = labels[x, y]
            if label > 0:
                if last_y[label] == y and last_x[label] != x - 1:
                    flagged[label] = True
                last_x[label] = x
                last_y[label] = y
    total = 0
    for label in range(1, count + 1):
        if flagged[label]:
            total += 1
    out = np.empty(total, dtype=np.int64)
    position = 0
    for label in range(1, count + 1):
        if flagged[label]:
            out[position] = label
            position += 1
    return out


def jump_tables(disabled: np.ndarray):
    """Per-row / per-column next-blocked-cell tables of one disabled mask.

    ``east[x, y]`` is the smallest ``x' > x`` with ``(x', y)`` disabled
    (sentinel ``width`` when clear to the border), and likewise west /
    north / south with sentinels ``-1`` / ``height`` / ``-1`` -- the
    contract of :class:`repro.routing.engine.JumpTables`.
    """
    width, height = disabled.shape
    east = np.empty((width, height), dtype=np.int64)
    west = np.empty((width, height), dtype=np.int64)
    north = np.empty((width, height), dtype=np.int64)
    south = np.empty((width, height), dtype=np.int64)
    for y in range(height):
        nearest = width
        for x in range(width - 1, -1, -1):
            east[x, y] = nearest
            if disabled[x, y]:
                nearest = x
        nearest = -1
        for x in range(width):
            west[x, y] = nearest
            if disabled[x, y]:
                nearest = x
    for x in range(width):
        nearest = height
        for y in range(height - 1, -1, -1):
            north[x, y] = nearest
            if disabled[x, y]:
                nearest = y
        nearest = -1
        for y in range(height):
            south[x, y] = nearest
            if disabled[x, y]:
                nearest = y
    return east, west, north, south


def scan_lanes(
    ring_x: np.ndarray,
    ring_y: np.ndarray,
    valid: np.ndarray,
    geo_bits: np.ndarray,
    width: int,
    height: int,
    disabled: np.ndarray,
    message_type: np.ndarray,
    step: np.ndarray,
    entry: np.ndarray,
    dest_x: np.ndarray,
    dest_y: np.ndarray,
    lengths: np.ndarray,
    starts: np.ndarray,
    lane_lo: int,
    lane_hi: int,
):
    """Scan ring lanes ``lane_lo+1 .. lane_hi`` of every row.

    Per row, walks the packed ring from the entry position in the travel
    direction and records the first exit lane (node passed the region and
    the e-cube follow-up hop is clear) and the first failure lane (node
    invalid: off the mesh or inside another region), with the argmax
    defaults of the vectorized scan (``lane_lo + 1`` when none found).
    Early-exits a row once both are known -- the win over the matrix scan.
    """
    rows = entry.shape[0]
    has_exit = np.zeros(rows, dtype=np.bool_)
    has_fail = np.zeros(rows, dtype=np.bool_)
    first_exit = np.full(rows, lane_lo + 1, dtype=np.int64)
    first_fail = np.full(rows, lane_lo + 1, dtype=np.int64)
    for row in range(rows):
        length = lengths[row]
        start = starts[row]
        begin = entry[row]
        direction = step[row]
        mtype = message_type[row]
        dx = dest_x[row]
        dy = dest_y[row]
        stop = lane_hi
        if stop > length:
            stop = length
        found_exit = False
        found_fail = False
        for lane in range(lane_lo + 1, stop + 1):
            if found_exit and found_fail:
                break
            index = start + (begin + direction * lane) % length
            if not valid[index]:
                if not found_fail:
                    found_fail = True
                    has_fail[row] = True
                    first_fail[row] = lane
                continue
            if found_exit:
                continue
            node_x = ring_x[index]
            node_y = ring_y[index]
            geo = (geo_bits[index] >> mtype) & 1
            if mtype <= 1:
                passed = geo != 0 or node_x == dx
            else:
                passed = geo != 0 or node_y == dy
            if not passed:
                continue
            if dx > node_x:
                step_x = 1
            elif dx < node_x:
                step_x = -1
            else:
                step_x = 0
            if step_x == 0:
                if dy > node_y:
                    step_y = 1
                elif dy < node_y:
                    step_y = -1
                else:
                    step_y = 0
            else:
                step_y = 0
            if step_x == 0 and step_y == 0:
                clear = True
            else:
                follow_x = node_x + step_x
                follow_y = node_y + step_y
                if follow_x < 0:
                    follow_x = 0
                elif follow_x >= width:
                    follow_x = width - 1
                if follow_y < 0:
                    follow_y = 0
                elif follow_y >= height:
                    follow_y = height - 1
                clear = not disabled[follow_x, follow_y]
            if clear:
                found_exit = True
                has_exit[row] = True
                first_exit[row] = lane
    return has_exit, first_exit, has_fail, first_fail


def grant_messages(
    requested: np.ndarray, active: np.ndarray, occupied: np.ndarray
) -> np.ndarray:
    """One netsim arbitration cycle: grant each free channel's lowest bidder.

    Returns the granted message indices ordered by requested channel
    ascending -- exactly the ``lexsort``-leader selection of the array
    simulator.  Implemented as one combined-key sort (``channel * big +
    message``), so no per-channel scratch array is allocated.
    """
    requests = requested.shape[0]
    big = np.int64(1)
    for i in range(requests):
        if active[i] >= big:
            big = active[i] + 1
    keys = np.empty(requests, dtype=np.int64)
    for i in range(requests):
        keys[i] = requested[i] * big + active[i]
    keys.sort()
    granted_count = 0
    previous = np.int64(-1)
    for i in range(requests):
        channel = keys[i] // big
        if channel != previous:
            previous = channel
            if not occupied[channel]:
                granted_count += 1
    granted = np.empty(granted_count, dtype=np.int64)
    position = 0
    previous = np.int64(-1)
    for i in range(requests):
        channel = keys[i] // big
        if channel != previous:
            previous = channel
            if not occupied[channel]:
                granted[position] = keys[i] % big
                position += 1
    return granted
