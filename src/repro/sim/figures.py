"""Regeneration of the paper's evaluation figures as data series.

The paper's Figures 9-11 each have two panels (random / clustered fault
distribution) and plot one curve per fault model against the number of
injected faults.  The functions here produce those curves as plain data
(:class:`FigureSeries`), so the benchmark harness can print the same
rows/series the paper reports and EXPERIMENTS.md can record
paper-vs-measured values without any plotting dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sim.experiments import run_latency_sweep, run_routing_sweep, run_sweep
from repro.sim.metrics import LatencySweepPoint, RoutingSweepPoint, SweepPoint

#: Fault counts used by the paper's sweep (0 is omitted: it is trivially 0).
DEFAULT_FAULT_COUNTS: Sequence[int] = (100, 200, 300, 400, 500, 600, 700, 800)


@dataclass
class FigureSeries:
    """One figure panel: x values plus one named series per fault model."""

    figure: str
    distribution: str
    x_label: str
    y_label: str
    x_values: List[int]
    series: Dict[str, List[float]] = field(default_factory=dict)
    #: Header of the x column in :meth:`as_rows` (fault sweeps keep the
    #: historical "faults"; the latency sweeps use "load").
    x_key: str = "faults"
    #: Optional per-model 95% confidence half-widths (campaign-scale
    #: sweeps populate these; empty means point estimates only).
    errors: Dict[str, List[float]] = field(default_factory=dict)

    def value(self, model: str, num_faults: int) -> float:
        """Return the y value of *model* at *num_faults*."""
        index = self.x_values.index(num_faults)
        return self.series[model][index]

    def error(self, model: str, num_faults: int) -> float:
        """The 95% half-width of *model* at *num_faults* (0.0 if absent)."""
        if model not in self.errors:
            return 0.0
        return self.errors[model][self.x_values.index(num_faults)]

    def as_rows(self) -> List[List[str]]:
        """Render the panel as table rows (header row first).

        Models with recorded confidence intervals render as
        ``mean±half``; the historical plain format is untouched when no
        errors are attached.
        """
        header = [self.x_key] + list(self.series)
        rows = [header]
        for index, x in enumerate(self.x_values):
            row = [str(x)]
            for model in self.series:
                cell = f"{self.series[model][index]:.2f}"
                if model in self.errors:
                    cell += f"±{self.errors[model][index]:.2f}"
                row.append(cell)
            rows.append(row)
        return rows


def _sweep(
    fault_counts: Sequence[int],
    trials: int,
    width: int,
    distribution: str,
    base_seed: int,
    include_distributed: bool,
    include_rounds: bool,
    workers: int = 1,
) -> List[SweepPoint]:
    return run_sweep(
        fault_counts=fault_counts,
        trials=trials,
        width=width,
        distribution=distribution,
        base_seed=base_seed,
        include_distributed=include_distributed,
        include_rounds=include_rounds,
        workers=workers,
    )


def figure9_series(
    distribution: str = "random",
    fault_counts: Sequence[int] = DEFAULT_FAULT_COUNTS,
    trials: int = 3,
    width: int = 100,
    base_seed: int = 0,
    log10: bool = True,
    points: Optional[List[SweepPoint]] = None,
    workers: int = 1,
    ci: bool = False,
) -> FigureSeries:
    """Figure 9: non-faulty but disabled nodes in the whole network.

    The paper plots the value on a log10 axis; set ``log10=False`` for the
    raw node counts.  Pass precomputed ``points`` to reuse one sweep for
    several figures.  ``ci=True`` attaches 95% confidence half-widths
    (raw scale only -- half-widths do not transform through log10).
    """
    if points is None:
        points = _sweep(
            fault_counts, trials, width, distribution, base_seed,
            include_distributed=False, include_rounds=False, workers=workers,
        )
    figure = FigureSeries(
        figure="9a" if distribution == "random" else "9b",
        distribution=distribution,
        x_label="Number of faulty nodes",
        y_label="# of disabled nodes (log10)" if log10 else "# of disabled nodes",
        x_values=[p.num_faults for p in points],
    )
    for model in ("FB", "FP", "MFP"):
        values = []
        for point in points:
            value = point.mean_disabled_nonfaulty(model)
            if log10:
                value = math.log10(value) if value > 0 else -1.0
            values.append(value)
        figure.series[model] = values
        if ci and not log10:
            figure.errors[model] = [
                p.ci95(model, "disabled_nonfaulty")[1] for p in points
            ]
    return figure


def figure10_series(
    distribution: str = "random",
    fault_counts: Sequence[int] = DEFAULT_FAULT_COUNTS,
    trials: int = 3,
    width: int = 100,
    base_seed: int = 0,
    points: Optional[List[SweepPoint]] = None,
    workers: int = 1,
    ci: bool = False,
) -> FigureSeries:
    """Figure 10: average size of a fault region (faulty + non-faulty nodes)."""
    if points is None:
        points = _sweep(
            fault_counts, trials, width, distribution, base_seed,
            include_distributed=False, include_rounds=False, workers=workers,
        )
    figure = FigureSeries(
        figure="10a" if distribution == "random" else "10b",
        distribution=distribution,
        x_label="Number of faulty nodes",
        y_label="Size of fault block/polygon",
        x_values=[p.num_faults for p in points],
    )
    for model in ("FB", "FP", "MFP"):
        figure.series[model] = [p.mean_region_size(model) for p in points]
        if ci:
            figure.errors[model] = [
                p.ci95(model, "mean_region_size")[1] for p in points
            ]
    return figure


def figure11_series(
    distribution: str = "random",
    fault_counts: Sequence[int] = DEFAULT_FAULT_COUNTS,
    trials: int = 3,
    width: int = 100,
    base_seed: int = 0,
    points: Optional[List[SweepPoint]] = None,
    workers: int = 1,
    ci: bool = False,
) -> FigureSeries:
    """Figure 11: rounds of status determination (FB, FP, CMFP, DMFP)."""
    if points is None:
        points = _sweep(
            fault_counts, trials, width, distribution, base_seed,
            include_distributed=True, include_rounds=True, workers=workers,
        )
    figure = FigureSeries(
        figure="11a" if distribution == "random" else "11b",
        distribution=distribution,
        x_label="Number of faulty nodes",
        y_label="Average # of rounds",
        x_values=[p.num_faults for p in points],
    )
    for model in ("FB", "FP", "CMFP", "DMFP"):
        figure.series[model] = [p.mean_rounds(model) for p in points]
        if ci:
            figure.errors[model] = [p.ci95(model, "rounds")[1] for p in points]
    return figure


#: Routing-series metrics -> (RoutingSweepPoint accessor, y-axis label).
ROUTING_METRICS: Dict[str, tuple] = {
    "delivery_rate": ("mean_delivery_rate", "Delivery rate"),
    "mean_hops": ("mean_hops", "Mean hops per delivered message"),
    "mean_detour": ("mean_detour", "Mean detour (extra hops)"),
    "abnormal_fraction": ("mean_abnormal_fraction", "Fraction of abnormal routes"),
    "enabled": ("mean_enabled", "Usable endpoint nodes"),
}


def routing_series(
    metric: str = "delivery_rate",
    distribution: str = "clustered",
    fault_counts: Sequence[int] = DEFAULT_FAULT_COUNTS,
    trials: int = 2,
    width: int = 100,
    base_seed: int = 0,
    traffic: str = "uniform",
    router: str = "extended-ecube",
    messages: int = 500,
    torus: bool = False,
    points: Optional[List[RoutingSweepPoint]] = None,
    workers: int = 1,
    ci: bool = False,
) -> FigureSeries:
    """Routing extension: one routing *metric* per fault model vs. fault count.

    Not a figure of the paper, but its motivation (Sections 1-2) measured:
    how the fault-region model affects the routing layer under a synthetic
    *traffic* workload.  Pass precomputed ``points`` (from
    :func:`repro.sim.experiments.run_routing_sweep`) to reuse one sweep
    for several metrics.
    """
    try:
        accessor, y_label = ROUTING_METRICS[metric]
    except KeyError:
        known = ", ".join(sorted(ROUTING_METRICS))
        raise KeyError(f"unknown routing metric {metric!r}; known: {known}") from None
    if points is None:
        points = run_routing_sweep(
            fault_counts=fault_counts,
            trials=trials,
            width=width,
            distribution=distribution,
            base_seed=base_seed,
            traffic=traffic,
            router=router,
            messages=messages,
            torus=torus,
            workers=workers,
        )
    figure = FigureSeries(
        figure=f"routing/{metric} ({traffic})",
        distribution=distribution,
        x_label="Number of faulty nodes",
        y_label=y_label,
        x_values=[p.num_faults for p in points],
    )
    models = points[0].models() if points else []
    for model in models:
        figure.series[model] = [getattr(p, accessor)(model) for p in points]
        if ci:
            figure.errors[model] = [p.ci95(model, metric)[1] for p in points]
    return figure


#: Latency-series metrics -> (LatencySweepPoint accessor, y-axis label).
LATENCY_METRICS: Dict[str, tuple] = {
    "mean_latency": ("mean_latency", "Mean latency (cycles)"),
    "mean_queueing": ("mean_queueing", "Mean queueing delay (cycles)"),
    "accepted_load": ("mean_accepted_load", "Accepted load (messages/node/cycle)"),
    "saturated": ("saturated_fraction", "Fraction of saturated runs"),
    "deadlocked": ("deadlocked_fraction", "Fraction of deadlocked runs"),
}

#: Offered loads of the default latency-vs-load sweep (messages/node/cycle).
DEFAULT_LOADS: Sequence[float] = (0.005, 0.01, 0.02, 0.04, 0.08, 0.16, 0.32)


def latency_series(
    metric: str = "mean_latency",
    distribution: str = "clustered",
    loads: Sequence[float] = DEFAULT_LOADS,
    trials: int = 2,
    num_faults: int = 0,
    width: int = 16,
    base_seed: int = 0,
    traffic: str = "uniform",
    arrival: str = "poisson",
    router: str = "extended-ecube",
    cycles: int = 256,
    torus: bool = False,
    points: Optional[List[LatencySweepPoint]] = None,
    workers: int = 1,
    ci: bool = False,
) -> FigureSeries:
    """Network-simulator extension: one contention *metric* vs. offered load.

    The latency-vs-load plot is the standard interconnect evaluation the
    paper's contention-free statistics cannot produce; the curve is flat
    near zero load (pure hop latency), rises with queueing delay and blows
    up past the saturation throughput.  Pass precomputed ``points`` (from
    :func:`repro.sim.experiments.run_latency_sweep`) to reuse one sweep
    for several metrics.
    """
    try:
        accessor, y_label = LATENCY_METRICS[metric]
    except KeyError:
        known = ", ".join(sorted(LATENCY_METRICS))
        raise KeyError(f"unknown latency metric {metric!r}; known: {known}") from None
    if points is None:
        points = run_latency_sweep(
            loads=loads,
            trials=trials,
            num_faults=num_faults,
            width=width,
            distribution=distribution,
            base_seed=base_seed,
            traffic=traffic,
            arrival=arrival,
            router=router,
            cycles=cycles,
            torus=torus,
            workers=workers,
        )
    figure = FigureSeries(
        figure=f"netsim/{metric} ({traffic}/{arrival})",
        distribution=distribution,
        x_label="Offered load (messages/node/cycle)",
        y_label=y_label,
        x_values=[p.load for p in points],
        x_key="load",
    )
    models = points[0].models() if points else []
    for model in models:
        figure.series[model] = [getattr(p, accessor)(model) for p in points]
        if ci:
            figure.errors[model] = [p.ci95(model, metric)[1] for p in points]
    return figure


def format_series_table(figure: FigureSeries) -> str:
    """Render a :class:`FigureSeries` as an aligned text table."""
    rows = figure.as_rows()
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    lines = [
        f"Figure {figure.figure} ({figure.distribution} fault distribution)",
        f"y: {figure.y_label}",
    ]
    for row_index, row in enumerate(rows):
        line = "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        lines.append(line)
        if row_index == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)
