"""Experiment registry: every table/figure of the paper, as data.

DESIGN.md describes the per-experiment index in prose; this module exposes
the same information programmatically so that tooling (the CLI, the
benchmark harness, downstream notebooks) can enumerate what the paper
reports and how this repository regenerates it.  There is one entry per
figure panel plus one per ablation that goes beyond the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


#: Figure-series labels -> construction registry keys (repro.api.registry).
SERIES_CONSTRUCTION_KEYS: Dict[str, str] = {
    "FB": "fb",
    "FP": "fp",
    "MFP": "mfp",
    "CMFP": "cmfp",
    "DMFP": "dmfp",
}


@dataclass(frozen=True)
class Experiment:
    """One reproducible experiment (a figure panel or an ablation)."""

    key: str
    paper_reference: str
    description: str
    quantity: str
    series: Tuple[str, ...]
    workload: str
    modules: Tuple[str, ...]
    bench_target: str
    in_paper: bool = True

    @property
    def construction_keys(self) -> Tuple[str, ...]:
        """Registry keys of the constructions this experiment compares.

        Resolvable via :func:`repro.api.get_construction`, so tooling can
        rebuild an experiment's models without parsing the series labels.
        """
        return tuple(
            SERIES_CONSTRUCTION_KEYS[label]
            for label in self.series
            if label in SERIES_CONSTRUCTION_KEYS
        )

    def describe(self) -> str:
        """One-paragraph human-readable description."""
        origin = self.paper_reference if self.in_paper else "extension (not in the paper)"
        return (
            f"{self.key}: {self.description}\n"
            f"  source      : {origin}\n"
            f"  quantity    : {self.quantity}\n"
            f"  series      : {', '.join(self.series)}\n"
            f"  api keys    : {', '.join(self.construction_keys)}\n"
            f"  workload    : {self.workload}\n"
            f"  modules     : {', '.join(self.modules)}\n"
            f"  bench target: {self.bench_target}"
        )


_SWEEP_WORKLOAD = (
    "100x100 mesh, faults inserted sequentially, swept 100..800, "
    "averaged over trials"
)

EXPERIMENTS: Dict[str, Experiment] = {
    experiment.key: experiment
    for experiment in (
        Experiment(
            key="fig9a",
            paper_reference="Figure 9(a)",
            description="non-faulty but disabled nodes in the whole network, random faults",
            quantity="total disabled non-faulty nodes (log10 in the paper)",
            series=("FB", "FP", "MFP"),
            workload=_SWEEP_WORKLOAD + ", random fault distribution",
            modules=(
                "repro.core.faulty_block",
                "repro.core.sub_minimum",
                "repro.core.mfp",
                "repro.sim.figures",
            ),
            bench_target="benchmarks/bench_fig09_disabled_nodes.py::test_figure9_panel[random]",
        ),
        Experiment(
            key="fig9b",
            paper_reference="Figure 9(b)",
            description="non-faulty but disabled nodes in the whole network, clustered faults",
            quantity="total disabled non-faulty nodes (log10 in the paper)",
            series=("FB", "FP", "MFP"),
            workload=_SWEEP_WORKLOAD + ", clustered fault distribution",
            modules=(
                "repro.core.faulty_block",
                "repro.core.sub_minimum",
                "repro.core.mfp",
                "repro.faults.models",
                "repro.sim.figures",
            ),
            bench_target="benchmarks/bench_fig09_disabled_nodes.py::test_figure9_panel[clustered]",
        ),
        Experiment(
            key="fig10a",
            paper_reference="Figure 10(a)",
            description="average fault-region size, random faults",
            quantity="mean nodes (faulty + non-faulty) per region",
            series=("FB", "FP", "MFP"),
            workload=_SWEEP_WORKLOAD + ", random fault distribution",
            modules=("repro.core.regions", "repro.sim.figures"),
            bench_target="benchmarks/bench_fig10_region_size.py::test_figure10_panel[random]",
        ),
        Experiment(
            key="fig10b",
            paper_reference="Figure 10(b)",
            description="average fault-region size, clustered faults",
            quantity="mean nodes (faulty + non-faulty) per region",
            series=("FB", "FP", "MFP"),
            workload=_SWEEP_WORKLOAD + ", clustered fault distribution",
            modules=("repro.core.regions", "repro.faults.models", "repro.sim.figures"),
            bench_target="benchmarks/bench_fig10_region_size.py::test_figure10_panel[clustered]",
        ),
        Experiment(
            key="fig11a",
            paper_reference="Figure 11(a)",
            description="rounds of status determination, random faults",
            quantity="synchronous neighbour-exchange rounds",
            series=("FB", "FP", "CMFP", "DMFP"),
            workload=_SWEEP_WORKLOAD + ", random fault distribution",
            modules=(
                "repro.core.labelling",
                "repro.core.mfp",
                "repro.distributed.ring",
                "repro.distributed.notification",
                "repro.distributed.dmfp",
                "repro.sim.figures",
            ),
            bench_target="benchmarks/bench_fig11_rounds.py::test_figure11_panel[random]",
        ),
        Experiment(
            key="fig11b",
            paper_reference="Figure 11(b)",
            description="rounds of status determination, clustered faults",
            quantity="synchronous neighbour-exchange rounds",
            series=("FB", "FP", "CMFP", "DMFP"),
            workload=_SWEEP_WORKLOAD + ", clustered fault distribution",
            modules=(
                "repro.core.labelling",
                "repro.core.mfp",
                "repro.distributed.dmfp",
                "repro.sim.figures",
            ),
            bench_target="benchmarks/bench_fig11_rounds.py::test_figure11_panel[clustered]",
        ),
        Experiment(
            key="ablation-routing",
            paper_reference="motivated by Sections 1-2",
            description="impact of the fault-region model on extended e-cube routing",
            quantity="usable endpoints, delivery rate, mean hops/detour",
            series=("FB", "FP", "MFP"),
            workload="60x60 mesh, 200 clustered faults, 400 uniform-random messages",
            modules=(
                "repro.api.routing",
                "repro.routing.registry",
                "repro.routing.extended_ecube",
            ),
            bench_target="benchmarks/bench_ablation_routing.py::test_routing_ablation",
            in_paper=False,
        ),
        Experiment(
            key="ablation-traffic",
            paper_reference="extension of the Section 2.2 routing application",
            description="synthetic traffic suite routed over MFP regions",
            quantity="delivery rate, mean hops/detour per traffic pattern",
            series=("MFP",),
            workload=(
                "uniform / transpose / bit-reversal / hotspot / "
                "nearest-neighbour / permutation batches over one clustered "
                "fault pattern"
            ),
            modules=(
                "repro.routing.traffic",
                "repro.api.routing",
                "repro.routing.extended_ecube",
            ),
            bench_target="benchmarks/bench_traffic_patterns.py",
            in_paper=False,
        ),
        Experiment(
            key="ablation-cluster-factor",
            paper_reference="extension of the clustered fault model",
            description="sensitivity of FB/MFP waste to the clustering strength",
            quantity="disabled non-faulty nodes vs. neighbour failure-rate multiplier",
            series=("FB", "MFP"),
            workload="100x100 mesh, 400 faults, cluster factor 1..8",
            modules=("repro.faults.models", "repro.core.mfp"),
            bench_target="benchmarks/bench_ablation_cluster_factor.py::test_cluster_factor_ablation",
            in_paper=False,
        ),
        Experiment(
            key="latency-load",
            paper_reference="standard interconnect evaluation (extension)",
            description="open-loop latency vs. offered load over MFP regions",
            quantity="mean latency, accepted load, saturation/deadlock verdicts",
            series=("MFP",),
            workload=(
                "16x16/32x32 meshes, fault-free vs clustered faults, "
                "Poisson/bursty arrivals over the synthetic traffic suite"
            ),
            modules=(
                "repro.netsim",
                "repro.routing.traffic",
                "repro.api.routing",
            ),
            bench_target="benchmarks/bench_saturation.py",
            in_paper=False,
        ),
        Experiment(
            key="ablation-mesh-size",
            paper_reference="scalability argument of Section 3",
            description="construction rounds vs. mesh size at fixed fault density",
            quantity="disabled nodes and rounds for FB / CMFP / DMFP",
            series=("FB", "MFP", "DMFP"),
            workload="40..130 square meshes at 4% clustered fault density",
            modules=("repro.core.mfp", "repro.distributed.dmfp"),
            bench_target="benchmarks/bench_ablation_mesh_size.py::test_mesh_size_ablation",
            in_paper=False,
        ),
    )
}


def get_experiment(key: str) -> Experiment:
    """Look up one experiment by key (raises ``KeyError`` with suggestions)."""
    try:
        return EXPERIMENTS[key]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {key!r}; known keys: {known}") from None


def paper_experiments() -> List[Experiment]:
    """Return the experiments that correspond to figures of the paper."""
    return [experiment for experiment in EXPERIMENTS.values() if experiment.in_paper]


def extension_experiments() -> List[Experiment]:
    """Return the ablations that go beyond the paper."""
    return [experiment for experiment in EXPERIMENTS.values() if not experiment.in_paper]


def render_index() -> str:
    """Render the whole experiment index as text (used by the CLI/docs)."""
    blocks = [experiment.describe() for experiment in EXPERIMENTS.values()]
    return "\n\n".join(blocks)
