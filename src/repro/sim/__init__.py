"""Experiment harness reproducing the paper's evaluation (Section 4).

* :mod:`repro.sim.metrics` -- per-scenario metric records comparing the
  FB / FP / MFP constructions, plus their routing-sweep counterparts.
* :mod:`repro.sim.experiments` -- runs all constructions on one scenario or
  on a fault-count sweep, and routes synthetic traffic workloads over a
  sweep (``run_routing_sweep``).
* :mod:`repro.sim.figures` -- regenerates the data series behind Figures 9,
  10 and 11 (both fault-distribution panels each) and the routing-metric
  series of the routing extension, rendered as text tables.
"""

from repro.sim.metrics import (
    ConstructionMetrics,
    RoutingMetrics,
    RoutingScenarioMetrics,
    RoutingSweepPoint,
    ScenarioMetrics,
    SweepPoint,
)
from repro.sim.experiments import compare_constructions, run_routing_sweep, run_sweep
from repro.sim.figures import (
    FigureSeries,
    figure9_series,
    figure10_series,
    figure11_series,
    format_series_table,
    routing_series,
)
from repro.sim.render import render_ascii_chart, render_comparison_summary
from repro.sim.registry import (
    EXPERIMENTS,
    Experiment,
    extension_experiments,
    get_experiment,
    paper_experiments,
)

__all__ = [
    "ConstructionMetrics",
    "ScenarioMetrics",
    "SweepPoint",
    "RoutingMetrics",
    "RoutingScenarioMetrics",
    "RoutingSweepPoint",
    "compare_constructions",
    "run_sweep",
    "run_routing_sweep",
    "FigureSeries",
    "figure9_series",
    "figure10_series",
    "figure11_series",
    "routing_series",
    "format_series_table",
    "render_ascii_chart",
    "render_comparison_summary",
    "EXPERIMENTS",
    "Experiment",
    "get_experiment",
    "paper_experiments",
    "extension_experiments",
]
