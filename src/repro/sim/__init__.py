"""Experiment harness reproducing the paper's evaluation (Section 4).

* :mod:`repro.sim.metrics` -- per-scenario metric records comparing the
  FB / FP / MFP constructions.
* :mod:`repro.sim.experiments` -- runs all constructions on one scenario or
  on a fault-count sweep.
* :mod:`repro.sim.figures` -- regenerates the data series behind Figures 9,
  10 and 11 (both fault-distribution panels each) and renders them as text
  tables.
"""

from repro.sim.metrics import ConstructionMetrics, ScenarioMetrics, SweepPoint
from repro.sim.experiments import compare_constructions, run_sweep
from repro.sim.figures import (
    FigureSeries,
    figure9_series,
    figure10_series,
    figure11_series,
    format_series_table,
)
from repro.sim.render import render_ascii_chart, render_comparison_summary
from repro.sim.registry import (
    EXPERIMENTS,
    Experiment,
    extension_experiments,
    get_experiment,
    paper_experiments,
)

__all__ = [
    "ConstructionMetrics",
    "ScenarioMetrics",
    "SweepPoint",
    "compare_constructions",
    "run_sweep",
    "FigureSeries",
    "figure9_series",
    "figure10_series",
    "figure11_series",
    "format_series_table",
    "render_ascii_chart",
    "render_comparison_summary",
    "EXPERIMENTS",
    "Experiment",
    "get_experiment",
    "paper_experiments",
    "extension_experiments",
]
