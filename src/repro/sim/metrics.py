"""Metric records for the evaluation harness.

The paper's three figures all plot one scalar per (fault model, fault
count, distribution) combination:

* Figure 9 -- total number of non-faulty but disabled nodes in the network;
* Figure 10 -- average region size (faulty + non-faulty nodes per region);
* Figure 11 -- number of rounds of neighbour information exchange needed to
  determine all node statuses (FB, FP, CMFP and DMFP).

:class:`ConstructionMetrics` captures those scalars for a single
construction run; :class:`ScenarioMetrics` groups the runs that share a
fault pattern; :class:`SweepPoint` averages scenarios at one fault count.

The routing sweeps (an extension beyond the paper's figures) mirror the
same three-level shape: :class:`RoutingMetrics` captures the scalars of
one routed message batch, :class:`RoutingScenarioMetrics` groups the fault
models routed over one fault pattern, and :class:`RoutingSweepPoint`
averages the scenarios at one fault count.

The latency-vs-load sweeps of the network simulator (:mod:`repro.netsim`)
mirror it once more with the offered load as the x axis:
:class:`NetSimMetrics` / :class:`NetSimScenarioMetrics` /
:class:`LatencySweepPoint`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class ConstructionMetrics:
    """Scalars extracted from one construction on one fault pattern."""

    model: str
    num_faults: int
    num_regions: int
    disabled_nonfaulty: int
    mean_region_size: float
    rounds: int

    @property
    def disabled_total(self) -> int:
        """Faulty plus sacrificed non-faulty nodes."""
        return self.num_faults + self.disabled_nonfaulty


@dataclass
class ScenarioMetrics:
    """All construction metrics for one fault scenario."""

    num_faults: int
    distribution: str
    seed: int
    per_model: Dict[str, ConstructionMetrics] = field(default_factory=dict)

    def add(self, metrics: ConstructionMetrics) -> None:
        """Register the metrics of one construction."""
        self.per_model[metrics.model] = metrics

    def disabled_nonfaulty(self, model: str) -> int:
        """Figure 9 scalar for *model*."""
        return self.per_model[model].disabled_nonfaulty

    def mean_region_size(self, model: str) -> float:
        """Figure 10 scalar for *model*."""
        return self.per_model[model].mean_region_size

    def rounds(self, model: str) -> int:
        """Figure 11 scalar for *model*."""
        return self.per_model[model].rounds

    def saving_vs_fb(self, model: str) -> float:
        """Fraction of FB-disabled non-faulty nodes re-enabled by *model*.

        The paper quotes roughly 50% for FP and 90% for MFP.
        """
        fb = self.per_model["FB"].disabled_nonfaulty
        if fb == 0:
            return 0.0
        return 1.0 - self.per_model[model].disabled_nonfaulty / fb


@dataclass
class SweepPoint:
    """Average of several scenarios at one fault count."""

    num_faults: int
    distribution: str
    scenarios: List[ScenarioMetrics] = field(default_factory=list)

    def add(self, scenario: ScenarioMetrics) -> None:
        """Register one scenario's metrics."""
        self.scenarios.append(scenario)

    def _mean_over(self, extractor) -> float:
        if not self.scenarios:
            return 0.0
        return mean(extractor(s) for s in self.scenarios)

    def mean_disabled_nonfaulty(self, model: str) -> float:
        """Average Figure 9 value at this fault count."""
        return self._mean_over(lambda s: s.disabled_nonfaulty(model))

    def mean_region_size(self, model: str) -> float:
        """Average Figure 10 value at this fault count."""
        return self._mean_over(lambda s: s.mean_region_size(model))

    def mean_rounds(self, model: str) -> float:
        """Average Figure 11 value at this fault count."""
        return self._mean_over(lambda s: s.rounds(model))

    def mean_saving_vs_fb(self, model: str) -> float:
        """Average fraction of FB's sacrificed nodes re-enabled by *model*."""
        return self._mean_over(lambda s: s.saving_vs_fb(model))

    def ci95(
        self, model: str, metric: str = "disabled_nonfaulty"
    ) -> Tuple[float, float]:
        """Streaming ``(mean, 95% half-width)`` of one per-scenario scalar.

        *metric* names a :class:`ScenarioMetrics` accessor
        (``disabled_nonfaulty`` / ``mean_region_size`` / ``rounds`` /
        ``saving_vs_fb``).  Shares the Welford fold with the campaign
        reducers (:mod:`repro.campaign.reducers`), so an in-memory
        sweep's intervals match a campaign's bit-for-bit given the same
        trials in the same order.
        """
        from repro.campaign.reducers import fold_moments

        moments = fold_moments(
            float(getattr(s, metric)(model)) for s in self.scenarios
        )
        return moments.mean, moments.ci95


# -- routing sweeps -----------------------------------------------------------------


@dataclass(frozen=True)
class RoutingMetrics:
    """Scalars of one routed message batch over one construction's regions."""

    model: str
    traffic: str
    router: str
    num_faults: int
    enabled: int
    attempted: int
    delivered: int
    delivery_rate: float
    mean_hops: float
    mean_detour: float
    minimal_fraction: float
    abnormal_fraction: float

    @classmethod
    def from_stats(
        cls,
        stats,
        *,
        model: Optional[str] = None,
        num_faults: int = 0,
    ) -> "RoutingMetrics":
        """Extract the scalars from a :class:`repro.routing.RoutingStats`."""
        return cls(
            model=model if model is not None else stats.model,
            traffic=stats.traffic,
            router=stats.router,
            num_faults=num_faults,
            enabled=stats.enabled,
            attempted=stats.attempted,
            delivered=stats.delivered,
            delivery_rate=stats.delivery_rate,
            mean_hops=stats.mean_hops,
            mean_detour=stats.mean_detour,
            minimal_fraction=stats.minimal_fraction,
            abnormal_fraction=stats.abnormal_fraction,
        )


@dataclass
class RoutingScenarioMetrics:
    """All routing metrics for one fault scenario (one record per model)."""

    num_faults: int
    distribution: str
    seed: int
    traffic: str = "uniform"
    router: str = "extended-ecube"
    per_model: Dict[str, RoutingMetrics] = field(default_factory=dict)

    def add(self, metrics: RoutingMetrics) -> None:
        """Register the metrics of one routed construction."""
        self.per_model[metrics.model] = metrics

    def value(self, model: str, metric: str) -> float:
        """Read one scalar (attribute name) of *model*'s record."""
        return getattr(self.per_model[model], metric)


@dataclass(frozen=True)
class NetSimMetrics:
    """Scalars of one open-loop contention simulation run."""

    model: str
    traffic: str
    arrival: str
    router: str
    sim: str
    load: float
    num_faults: int
    enabled: int
    attempted: int
    unroutable: int
    delivered: int
    in_flight: int
    delivery_rate: float
    mean_latency: float
    mean_queueing: float
    mean_hops: float
    accepted_load: float
    cycles_run: int
    saturated: bool
    deadlocked: bool

    @classmethod
    def from_stats(cls, stats, *, num_faults: int = 0) -> "NetSimMetrics":
        """Extract the scalars from a :class:`repro.netsim.NetSimStats`."""
        return cls(
            model=stats.model,
            traffic=stats.traffic,
            arrival=stats.arrival,
            router=stats.router,
            sim=stats.sim,
            load=stats.load,
            num_faults=num_faults,
            enabled=stats.enabled,
            attempted=stats.attempted,
            unroutable=stats.unroutable,
            delivered=stats.delivered,
            in_flight=stats.in_flight,
            delivery_rate=stats.delivery_rate,
            mean_latency=stats.mean_latency,
            mean_queueing=stats.mean_queueing,
            mean_hops=stats.mean_hops,
            accepted_load=stats.accepted_load,
            cycles_run=stats.cycles_run,
            saturated=stats.saturated,
            deadlocked=stats.deadlocked,
        )


@dataclass
class NetSimScenarioMetrics:
    """All contention metrics for one load point's scenario (per model)."""

    load: float
    num_faults: int
    distribution: str
    seed: int
    traffic: str = "uniform"
    arrival: str = "poisson"
    router: str = "extended-ecube"
    per_model: Dict[str, NetSimMetrics] = field(default_factory=dict)

    def add(self, metrics: NetSimMetrics) -> None:
        """Register the metrics of one simulated construction."""
        self.per_model[metrics.model] = metrics

    def value(self, model: str, metric: str) -> float:
        """Read one scalar (attribute name) of *model*'s record."""
        return getattr(self.per_model[model], metric)


@dataclass
class LatencySweepPoint:
    """Average of several contention scenarios at one offered load."""

    load: float
    distribution: str
    scenarios: List[NetSimScenarioMetrics] = field(default_factory=list)

    def add(self, scenario: NetSimScenarioMetrics) -> None:
        """Register one scenario's contention metrics."""
        self.scenarios.append(scenario)

    def models(self) -> List[str]:
        """The model labels present at this point (first scenario's order)."""
        return list(self.scenarios[0].per_model) if self.scenarios else []

    def mean(self, model: str, metric: str) -> float:
        """Average one scalar (attribute name) of *model* over the scenarios."""
        if not self.scenarios:
            return 0.0
        return mean(float(s.value(model, metric)) for s in self.scenarios)

    def mean_latency(self, model: str) -> float:
        """Average delivered-message latency (cycles) for *model*."""
        return self.mean(model, "mean_latency")

    def mean_queueing(self, model: str) -> float:
        """Average stalled cycles per delivered message for *model*."""
        return self.mean(model, "mean_queueing")

    def mean_accepted_load(self, model: str) -> float:
        """Average delivered throughput (messages/node/cycle) for *model*."""
        return self.mean(model, "accepted_load")

    def saturated_fraction(self, model: str) -> float:
        """Fraction of the point's scenarios past the saturation knee."""
        return self.mean(model, "saturated")

    def deadlocked_fraction(self, model: str) -> float:
        """Fraction of the point's scenarios that stopped on a deadlock."""
        return self.mean(model, "deadlocked")

    def ci95(self, model: str, metric: str = "mean_latency") -> Tuple[float, float]:
        """Streaming ``(mean, 95% half-width)`` of one per-scenario scalar.

        Shares the Welford fold with the campaign reducers; see
        :meth:`SweepPoint.ci95`.
        """
        from repro.campaign.reducers import fold_moments

        moments = fold_moments(
            float(s.value(model, metric)) for s in self.scenarios
        )
        return moments.mean, moments.ci95


@dataclass
class RoutingSweepPoint:
    """Average of several routed scenarios at one fault count."""

    num_faults: int
    distribution: str
    scenarios: List[RoutingScenarioMetrics] = field(default_factory=list)

    def add(self, scenario: RoutingScenarioMetrics) -> None:
        """Register one scenario's routing metrics."""
        self.scenarios.append(scenario)

    def models(self) -> List[str]:
        """The model labels present at this point (first scenario's order)."""
        return list(self.scenarios[0].per_model) if self.scenarios else []

    def mean(self, model: str, metric: str) -> float:
        """Average one scalar (attribute name) of *model* over the scenarios."""
        if not self.scenarios:
            return 0.0
        return mean(s.value(model, metric) for s in self.scenarios)

    def mean_delivery_rate(self, model: str) -> float:
        """Average fraction of delivered messages for *model*."""
        return self.mean(model, "delivery_rate")

    def mean_hops(self, model: str) -> float:
        """Average hop count of delivered messages for *model*."""
        return self.mean(model, "mean_hops")

    def mean_detour(self, model: str) -> float:
        """Average detour (extra hops) of delivered messages for *model*."""
        return self.mean(model, "mean_detour")

    def mean_abnormal_fraction(self, model: str) -> float:
        """Average fraction of messages routed around a region for *model*."""
        return self.mean(model, "abnormal_fraction")

    def mean_enabled(self, model: str) -> float:
        """Average number of usable endpoint nodes for *model*."""
        return self.mean(model, "enabled")

    def ci95(self, model: str, metric: str = "delivery_rate") -> Tuple[float, float]:
        """Streaming ``(mean, 95% half-width)`` of one per-scenario scalar.

        Shares the Welford fold with the campaign reducers; see
        :meth:`SweepPoint.ci95`.
        """
        from repro.campaign.reducers import fold_moments

        moments = fold_moments(
            float(s.value(model, metric)) for s in self.scenarios
        )
        return moments.mean, moments.ci95
