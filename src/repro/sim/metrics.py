"""Metric records for the evaluation harness.

The paper's three figures all plot one scalar per (fault model, fault
count, distribution) combination:

* Figure 9 -- total number of non-faulty but disabled nodes in the network;
* Figure 10 -- average region size (faulty + non-faulty nodes per region);
* Figure 11 -- number of rounds of neighbour information exchange needed to
  determine all node statuses (FB, FP, CMFP and DMFP).

:class:`ConstructionMetrics` captures those scalars for a single
construction run; :class:`ScenarioMetrics` groups the runs that share a
fault pattern; :class:`SweepPoint` averages scenarios at one fault count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Dict, List, Mapping, Optional, Sequence


@dataclass(frozen=True)
class ConstructionMetrics:
    """Scalars extracted from one construction on one fault pattern."""

    model: str
    num_faults: int
    num_regions: int
    disabled_nonfaulty: int
    mean_region_size: float
    rounds: int

    @property
    def disabled_total(self) -> int:
        """Faulty plus sacrificed non-faulty nodes."""
        return self.num_faults + self.disabled_nonfaulty


@dataclass
class ScenarioMetrics:
    """All construction metrics for one fault scenario."""

    num_faults: int
    distribution: str
    seed: int
    per_model: Dict[str, ConstructionMetrics] = field(default_factory=dict)

    def add(self, metrics: ConstructionMetrics) -> None:
        """Register the metrics of one construction."""
        self.per_model[metrics.model] = metrics

    def disabled_nonfaulty(self, model: str) -> int:
        """Figure 9 scalar for *model*."""
        return self.per_model[model].disabled_nonfaulty

    def mean_region_size(self, model: str) -> float:
        """Figure 10 scalar for *model*."""
        return self.per_model[model].mean_region_size

    def rounds(self, model: str) -> int:
        """Figure 11 scalar for *model*."""
        return self.per_model[model].rounds

    def saving_vs_fb(self, model: str) -> float:
        """Fraction of FB-disabled non-faulty nodes re-enabled by *model*.

        The paper quotes roughly 50% for FP and 90% for MFP.
        """
        fb = self.per_model["FB"].disabled_nonfaulty
        if fb == 0:
            return 0.0
        return 1.0 - self.per_model[model].disabled_nonfaulty / fb


@dataclass
class SweepPoint:
    """Average of several scenarios at one fault count."""

    num_faults: int
    distribution: str
    scenarios: List[ScenarioMetrics] = field(default_factory=list)

    def add(self, scenario: ScenarioMetrics) -> None:
        """Register one scenario's metrics."""
        self.scenarios.append(scenario)

    def _mean_over(self, extractor) -> float:
        if not self.scenarios:
            return 0.0
        return mean(extractor(s) for s in self.scenarios)

    def mean_disabled_nonfaulty(self, model: str) -> float:
        """Average Figure 9 value at this fault count."""
        return self._mean_over(lambda s: s.disabled_nonfaulty(model))

    def mean_region_size(self, model: str) -> float:
        """Average Figure 10 value at this fault count."""
        return self._mean_over(lambda s: s.mean_region_size(model))

    def mean_rounds(self, model: str) -> float:
        """Average Figure 11 value at this fault count."""
        return self._mean_over(lambda s: s.rounds(model))

    def mean_saving_vs_fb(self, model: str) -> float:
        """Average fraction of FB's sacrificed nodes re-enabled by *model*."""
        return self._mean_over(lambda s: s.saving_vs_fb(model))
