"""Text rendering of figure series: ASCII charts for the terminal.

The evaluation harness produces :class:`~repro.sim.figures.FigureSeries`
objects; this module turns them into small ASCII line charts so that the
shape of each reproduced figure (who wins, where curves cross) can be read
directly from the benchmark output or an example script without any
plotting dependency.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.sim.figures import FigureSeries

#: One plot glyph per series, cycled in declaration order.
_GLYPHS = "*o+x#@"


def _scale(value: float, lo: float, hi: float, height: int) -> int:
    """Map *value* in ``[lo, hi]`` to a row index in ``[0, height - 1]``."""
    if hi <= lo:
        return 0
    fraction = (value - lo) / (hi - lo)
    return min(height - 1, max(0, round(fraction * (height - 1))))


def render_ascii_chart(
    figure: FigureSeries,
    height: int = 12,
    width: Optional[int] = None,
) -> str:
    """Render a :class:`FigureSeries` as an ASCII chart.

    Each series gets its own glyph; the y axis is scaled to the overall
    minimum/maximum across all series, and the x axis lists the fault
    counts.  ``width`` controls the number of character columns available
    for the plotting area (defaults to 4 columns per x value).
    """
    if not figure.series:
        return "(empty figure)"
    x_count = len(figure.x_values)
    columns = width if width is not None else max(4 * x_count, 2 * x_count)
    all_values = [v for series in figure.series.values() for v in series]
    lo, hi = min(all_values), max(all_values)

    # canvas[row][col]; row 0 is the top of the chart.
    canvas = [[" "] * columns for _ in range(height)]
    column_of = [
        round(index * (columns - 1) / max(1, x_count - 1)) for index in range(x_count)
    ]
    legend: List[str] = []
    for series_index, (name, values) in enumerate(figure.series.items()):
        glyph = _GLYPHS[series_index % len(_GLYPHS)]
        legend.append(f"{glyph} = {name}")
        for index, value in enumerate(values):
            row = height - 1 - _scale(value, lo, hi, height)
            col = column_of[index]
            existing = canvas[row][col]
            canvas[row][col] = "&" if existing not in (" ", glyph) else glyph

    y_labels = [f"{hi:8.2f} |", *([" " * 8 + " |"] * (height - 2)), f"{lo:8.2f} |"]
    lines = [
        f"Figure {figure.figure} ({figure.distribution}): {figure.y_label}",
    ]
    for row in range(height):
        lines.append(y_labels[row] + "".join(canvas[row]))
    axis = " " * 9 + "+" + "-" * columns
    lines.append(axis)
    # Leave room for the last tick label to extend past the plotting area.
    tick_line = [" "] * (columns + 10 + 8)
    for index, x in enumerate(figure.x_values):
        label = str(x)
        start = 10 + column_of[index]
        for offset, char in enumerate(label):
            position = start + offset
            if position < len(tick_line):
                tick_line[position] = char
    lines.append("".join(tick_line).rstrip())
    lines.append("legend: " + "   ".join(legend) + "   (& = overlapping points)")
    return "\n".join(lines)


def render_comparison_summary(figures: Sequence[FigureSeries]) -> str:
    """Render the final-point values of several figures as one table.

    Handy one-screen summary: for every figure, the value of each series at
    the largest fault count.
    """
    lines = ["series values at the largest fault count"]
    for figure in figures:
        top = figure.x_values[-1]
        parts = [f"{name}={figure.value(name, top):.2f}" for name in figure.series]
        lines.append(
            f"  Figure {figure.figure} ({figure.distribution}, {top} faults): "
            + ", ".join(parts)
        )
    return "\n".join(lines)
