"""Running the paper's constructions over fault scenarios.

Thin compatibility layer over :mod:`repro.api`: ``compare_constructions``
runs the registered constructions (FB, FP, MFP/CMFP and optionally DMFP)
on one fault pattern via the construction registry, ``run_sweep``
delegates the fault-count sweep -- exactly the shape of the paper's
simulation ("faults are sequentially added", "a simulation has been
conducted in a 100x100 mesh ... the number of faults is no more than 800")
-- to :class:`repro.api.SweepExecutor`, which can fan trials out over
worker processes, and ``run_routing_sweep`` does the same for the routing
extension: every trial routes one synthetic traffic batch (see
:mod:`repro.routing.traffic`) over each model's regions.
``run_latency_sweep`` adds the open-loop axis on top: every trial replays
a timed batch through the contention simulator of :mod:`repro.netsim`,
producing the classic latency-vs-offered-load curve.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.api.executor import (
    DEFAULT_MODELS,
    DEFAULT_NETSIM_MODELS,
    DEFAULT_ROUTING_MODELS,
    SweepExecutor,
    collect_scenario_metrics,
)
from repro.faults.scenario import FaultScenario
from repro.sim.metrics import (
    LatencySweepPoint,
    RoutingSweepPoint,
    ScenarioMetrics,
    SweepPoint,
)


def _model_keys(include_distributed: bool) -> tuple:
    if include_distributed:
        return DEFAULT_MODELS
    return tuple(key for key in DEFAULT_MODELS if key != "dmfp")


def compare_constructions(
    scenario: FaultScenario,
    include_distributed: bool = True,
    include_rounds: bool = True,
) -> ScenarioMetrics:
    """Run every fault-region construction on one scenario.

    Parameters
    ----------
    scenario:
        The fault pattern (and topology) to run on.
    include_distributed:
        Also run the distributed MFP construction (DMFP); needed for the
        Figure 11 rounds comparison, skippable for the Figure 9/10 sweeps.
    include_rounds:
        Whether the centralized MFP should compute its round emulation
        (CMFP); disable to speed up the Figure 9/10 sweeps.
    """
    return collect_scenario_metrics(
        scenario,
        models=_model_keys(include_distributed),
        include_rounds=include_rounds,
    )


def run_sweep(
    fault_counts: Sequence[int],
    trials: int = 3,
    width: int = 100,
    distribution: str = "random",
    base_seed: int = 0,
    include_distributed: bool = True,
    include_rounds: bool = True,
    cluster_factor: float = 2.0,
    torus: bool = False,
    workers: int = 1,
    campaign=None,
) -> List[SweepPoint]:
    """Run the constructions over a fault-count sweep.

    Returns one :class:`SweepPoint` per entry of *fault_counts*, each
    averaging *trials* independently seeded scenarios.  All constructions
    inside a trial share the same fault pattern (paired comparison).  Pass
    ``workers`` > 1 (or ``None`` for all CPUs) to fan the trials out over a
    process pool; the per-trial seeds are deterministic either way.
    ``torus`` runs the sweep on a 2-D torus instead of the paper's mesh.
    ``campaign=<directory>`` streams the sweep through the resumable
    content-addressed campaign store (see :mod:`repro.campaign`).
    """
    executor = SweepExecutor(
        models=_model_keys(include_distributed), workers=workers
    )
    return executor.run(
        fault_counts,
        trials,
        width=width,
        distribution=distribution,
        base_seed=base_seed,
        cluster_factor=cluster_factor,
        torus=torus,
        include_rounds=include_rounds,
        campaign=campaign,
    )


def run_routing_sweep(
    fault_counts: Sequence[int],
    trials: int = 3,
    width: int = 100,
    distribution: str = "random",
    base_seed: int = 0,
    models: Tuple[str, ...] = DEFAULT_ROUTING_MODELS,
    router: str = "extended-ecube",
    traffic: str = "uniform",
    messages: int = 500,
    cluster_factor: float = 2.0,
    torus: bool = False,
    workers: int = 1,
    engine=None,
    reducer=None,
    campaign=None,
) -> List[RoutingSweepPoint]:
    """Route synthetic traffic over a fault-count sweep.

    Returns one :class:`~repro.sim.metrics.RoutingSweepPoint` per entry of
    *fault_counts*.  Every trial builds *models* (construction registry
    keys) on one generated fault pattern and routes the same seeded
    *traffic* batch (traffic registry key) through *router* (router
    registry key) over each -- the paired comparison of the routing
    ablation, generalised to the whole synthetic workload suite.  Like
    :func:`run_sweep`, trials fan out over ``workers`` processes with
    deterministic per-trial seeds.  *engine* picks the routing engine
    (``"scalar"`` / ``"batch"`` / ``"auto"``; ``None`` follows the
    ambient default) -- the engines are bit-identical, so the choice only
    affects the sweep's wall-clock time.
    """
    executor = SweepExecutor(models=models, workers=workers)
    return executor.run_routing(
        fault_counts,
        trials,
        width=width,
        distribution=distribution,
        base_seed=base_seed,
        cluster_factor=cluster_factor,
        torus=torus,
        router=router,
        traffic=traffic,
        messages=messages,
        engine=engine,
        reducer=reducer,
        campaign=campaign,
    )


def run_latency_sweep(
    loads: Sequence[float],
    trials: int = 2,
    num_faults: int = 0,
    width: int = 16,
    distribution: str = "clustered",
    base_seed: int = 0,
    models: Tuple[str, ...] = DEFAULT_NETSIM_MODELS,
    router: str = "extended-ecube",
    traffic: str = "uniform",
    arrival: str = "poisson",
    cycles: int = 256,
    drain_factor: int = 8,
    cluster_factor: float = 2.0,
    torus: bool = False,
    workers: int = 1,
    sim=None,
    reducer=None,
    campaign=None,
) -> List[LatencySweepPoint]:
    """Run an open-loop latency-vs-load sweep over the network simulator.

    Returns one :class:`~repro.sim.metrics.LatencySweepPoint` per entry of
    *loads* (offered messages per node per cycle).  Every trial generates
    one fault pattern at *num_faults*, builds *models* on it and replays a
    timed traffic batch (*traffic* endpoints, *arrival* injection times)
    through the contention simulator -- the paper-standard interconnect
    evaluation the contention-free routing sweeps cannot produce.  Like
    the other sweeps, trials fan out over ``workers`` processes with
    deterministic seeds; *sim* picks the simulator (``"array"`` /
    ``"scalar"`` / ``"auto"``; ``None`` follows ``REPRO_NETSIM``), which
    never affects the results -- the simulators are bit-identical.
    """
    executor = SweepExecutor(models=models, workers=workers)
    return executor.run_latency(
        loads,
        trials,
        num_faults=num_faults,
        width=width,
        distribution=distribution,
        base_seed=base_seed,
        cluster_factor=cluster_factor,
        torus=torus,
        router=router,
        traffic=traffic,
        arrival=arrival,
        cycles=cycles,
        drain_factor=drain_factor,
        sim=sim,
        reducer=reducer,
        campaign=campaign,
    )
