"""Running the paper's constructions over fault scenarios.

``compare_constructions`` runs the rectangular faulty block (FB), the
sub-minimum faulty polygon (FP), the centralized minimum faulty polygon
(MFP / CMFP) and optionally the distributed construction (DMFP) on one
fault pattern and extracts the figure scalars.  ``run_sweep`` repeats this
over a fault-count sweep with several trials per point -- exactly the shape
of the paper's simulation ("faults are sequentially added", "a simulation
has been conducted in a 100x100 mesh ... the number of faults is no more
than 800").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.faulty_block import build_faulty_blocks
from repro.core.mfp import build_minimum_polygons
from repro.core.sub_minimum import build_sub_minimum_polygons
from repro.distributed.dmfp import build_minimum_polygons_distributed
from repro.faults.scenario import FaultScenario, generate_scenario
from repro.sim.metrics import ConstructionMetrics, ScenarioMetrics, SweepPoint


def compare_constructions(
    scenario: FaultScenario,
    include_distributed: bool = True,
    include_rounds: bool = True,
) -> ScenarioMetrics:
    """Run every fault-region construction on one scenario.

    Parameters
    ----------
    scenario:
        The fault pattern (and topology) to run on.
    include_distributed:
        Also run the distributed MFP construction (DMFP); needed for the
        Figure 11 rounds comparison, skippable for the Figure 9/10 sweeps.
    include_rounds:
        Whether the centralized MFP should compute its round emulation
        (CMFP); disable to speed up the Figure 9/10 sweeps.
    """
    topology = scenario.topology()
    faults = scenario.faults
    metrics = ScenarioMetrics(
        num_faults=scenario.num_faults,
        distribution=scenario.model,
        seed=scenario.seed,
    )

    fb = build_faulty_blocks(faults, topology=topology)
    metrics.add(
        ConstructionMetrics(
            model="FB",
            num_faults=scenario.num_faults,
            num_regions=len(fb.regions),
            disabled_nonfaulty=fb.num_disabled_nonfaulty,
            mean_region_size=fb.mean_region_size,
            rounds=fb.rounds,
        )
    )

    fp = build_sub_minimum_polygons(faults, topology=topology)
    metrics.add(
        ConstructionMetrics(
            model="FP",
            num_faults=scenario.num_faults,
            num_regions=len(fp.regions),
            disabled_nonfaulty=fp.num_disabled_nonfaulty,
            mean_region_size=fp.mean_region_size,
            rounds=fp.rounds,
        )
    )

    mfp = build_minimum_polygons(
        faults, topology=topology, compute_rounds=include_rounds
    )
    metrics.add(
        ConstructionMetrics(
            model="MFP",
            num_faults=scenario.num_faults,
            num_regions=len(mfp.regions),
            disabled_nonfaulty=mfp.num_disabled_nonfaulty,
            mean_region_size=mfp.mean_region_size,
            rounds=mfp.rounds,
        )
    )
    # The centralized solution's rounds are reported under the CMFP label.
    metrics.add(
        ConstructionMetrics(
            model="CMFP",
            num_faults=scenario.num_faults,
            num_regions=len(mfp.regions),
            disabled_nonfaulty=mfp.num_disabled_nonfaulty,
            mean_region_size=mfp.mean_region_size,
            rounds=mfp.rounds,
        )
    )

    if include_distributed:
        dmfp = build_minimum_polygons_distributed(faults, topology=topology)
        metrics.add(
            ConstructionMetrics(
                model="DMFP",
                num_faults=scenario.num_faults,
                num_regions=len(dmfp.regions),
                disabled_nonfaulty=dmfp.num_disabled_nonfaulty,
                mean_region_size=dmfp.mean_region_size,
                rounds=dmfp.rounds,
            )
        )
    return metrics


def run_sweep(
    fault_counts: Sequence[int],
    trials: int = 3,
    width: int = 100,
    distribution: str = "random",
    base_seed: int = 0,
    include_distributed: bool = True,
    include_rounds: bool = True,
    cluster_factor: float = 2.0,
) -> List[SweepPoint]:
    """Run the constructions over a fault-count sweep.

    Returns one :class:`SweepPoint` per entry of *fault_counts*, each
    averaging *trials* independently seeded scenarios.  All constructions
    inside a trial share the same fault pattern (paired comparison).
    """
    points: List[SweepPoint] = []
    for count_index, num_faults in enumerate(fault_counts):
        point = SweepPoint(num_faults=num_faults, distribution=distribution)
        for trial in range(trials):
            seed = base_seed + 10_000 * count_index + trial
            scenario = generate_scenario(
                num_faults=num_faults,
                width=width,
                model=distribution,
                seed=seed,
                cluster_factor=cluster_factor,
            )
            point.add(
                compare_constructions(
                    scenario,
                    include_distributed=include_distributed,
                    include_rounds=include_rounds,
                )
            )
        points.append(point)
    return points
