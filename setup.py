"""Legacy setup shim.

The project is configured through ``pyproject.toml``; this file only exists
so that editable installs keep working on interpreters whose packaging
toolchain predates PEP 660 (no ``wheel``/``build`` available, e.g. offline
build environments).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Reproduction of 'On Constructing the Minimum Orthogonal Convex "
        "Polygon in 2-D Faulty Meshes' (Wu & Jiang, IPDPS 2004)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    entry_points={"console_scripts": ["repro-mesh=repro.cli:main"]},
)
