"""Micro-benchmarks of the individual constructions.

These time one construction on a fixed 100x100 scenario with 400 clustered
faults (the middle of the paper's sweep), using pytest-benchmark's normal
repetition so the timing statistics are meaningful.  They are not part of
the paper's evaluation but document the cost of each building block and
guard against performance regressions.
"""

import pytest

from repro.core.faulty_block import build_faulty_blocks
from repro.core.labelling import apply_labelling_scheme_1, faults_to_mask
from repro.core.mfp import build_minimum_polygons
from repro.core.components import find_components
from repro.core.sub_minimum import build_sub_minimum_polygons
from repro.distributed.dmfp import build_minimum_polygons_distributed
from repro.faults.scenario import generate_scenario
from repro.geometry.orthogonal import orthogonal_convex_hull


@pytest.fixture(scope="module")
def scenario():
    return generate_scenario(num_faults=400, width=100, model="clustered", seed=42)


@pytest.fixture(scope="module")
def topology(scenario):
    return scenario.topology()


def test_bench_scheme1_labelling(benchmark, scenario):
    mask = faults_to_mask(scenario.faults, 100, 100)
    benchmark(apply_labelling_scheme_1, mask)


def test_bench_faulty_blocks(benchmark, scenario, topology):
    result = benchmark(build_faulty_blocks, scenario.faults, topology)
    assert result.all_rectangular()


def test_bench_sub_minimum_polygons(benchmark, scenario, topology):
    result = benchmark(build_sub_minimum_polygons, scenario.faults, topology)
    assert result.all_orthogonal_convex()


def test_bench_minimum_polygons(benchmark, scenario, topology):
    result = benchmark(
        build_minimum_polygons, scenario.faults, topology, compute_rounds=False
    )
    assert result.all_orthogonal_convex()


def test_bench_minimum_polygons_with_rounds(benchmark, scenario, topology):
    result = benchmark(
        build_minimum_polygons, scenario.faults, topology, compute_rounds=True
    )
    assert result.rounds >= 0


def test_bench_distributed_construction(benchmark, scenario, topology):
    result = benchmark(build_minimum_polygons_distributed, scenario.faults, topology)
    assert result.all_orthogonal_convex()


def test_bench_component_merge(benchmark, scenario):
    components = benchmark(find_components, scenario.faults)
    assert components


def test_bench_orthogonal_convex_hull(benchmark, scenario):
    components = find_components(scenario.faults)
    largest = max(components, key=lambda c: c.size)
    hull = benchmark(orthogonal_convex_hull, largest.nodes)
    assert set(largest.nodes) <= hull
