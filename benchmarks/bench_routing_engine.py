#!/usr/bin/env python
"""Benchmark: the batch routing engine against the scalar router.

Routes the full synthetic traffic suite over MFP regions on a sweep of
mesh sizes, once through the scalar per-message router and once through
the vectorized lockstep batch engine (``repro.routing.engine``), and
records per-configuration timings, ``messages_per_second`` and speedups.
The two engines must produce **bit-identical** ``RoutingStats``
aggregates; the benchmark refuses to report a speedup (and exits
non-zero) when any field differs.

The measurements are written as machine-readable JSON (schema
``repro.bench_routing/v1``).  ``--compare`` checks the stats fields of a
run against a previously committed reference -- the CI regression guard
re-runs the 100x100 configuration and compares it against
``benchmarks/results/BENCH_routing_engine.json`` (timings are
informational only and never compared).

Usage::

    PYTHONPATH=src python benchmarks/bench_routing_engine.py              # 100..300 sweep
    PYTHONPATH=src python benchmarks/bench_routing_engine.py \\
        --widths 24 --messages 300 --out /tmp/engine.json                 # CI smoke
    PYTHONPATH=src python benchmarks/bench_routing_engine.py --widths 100 \\
        --compare benchmarks/results/BENCH_routing_engine.json            # CI guard
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # allow running straight from a checkout
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

import numpy as np

from repro.api import MeshSession, traffic_keys
from repro.faults.scenario import generate_scenario

SCHEMA = "repro.bench_routing/v1"
DEFAULT_OUT = Path(__file__).parent / "results" / "BENCH_routing_engine.json"

#: RoutingStats fields that must be bit-identical between the engines.
STATS_FIELDS = (
    "attempted",
    "delivered",
    "failed",
    "total_hops",
    "total_detour",
    "minimal_routes",
    "abnormal_routes",
)


def stats_fields(stats) -> dict:
    fields = {field: getattr(stats, field) for field in STATS_FIELDS}
    # The effective array backend is part of the compared record: a
    # reference produced under one backend cannot silently pass the
    # ``--compare`` guard of a run under another.
    fields["array_backend"] = stats.backend
    return fields


def bench_pattern(
    session: MeshSession, traffic: str, messages: int, seed: int, repeats: int
) -> dict:
    """Time one traffic pattern through both engines (best of *repeats*)."""
    route = dict(traffic=traffic, messages=messages, seed=seed)
    # Warm every session cache (construction, router, rings, jump tables)
    # so both engines are timed on equal footing.
    scalar_stats = session.route("mfp", engine="scalar", **route)
    batch_stats = session.route("mfp", engine="batch", **route)
    timings = {}
    for engine in ("scalar", "batch"):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            session.route("mfp", engine=engine, **route)
            best = min(best, time.perf_counter() - start)
        timings[engine] = best
    identical = stats_fields(scalar_stats) == stats_fields(batch_stats)
    report = {
        "label": batch_stats.traffic,
        "messages": batch_stats.attempted,
        "delivery_rate": batch_stats.delivery_rate,
        "mean_detour": batch_stats.mean_detour,
        "scalar_seconds": timings["scalar"],
        "batch_seconds": timings["batch"],
        "scalar_messages_per_second": messages / timings["scalar"],
        "batch_messages_per_second": messages / timings["batch"],
        "speedup": timings["scalar"] / timings["batch"],
        "identical": identical,
        "stats": stats_fields(batch_stats),
    }
    print(
        f"{traffic:>18} scalar {timings['scalar'] * 1000:8.2f} ms   "
        f"batch {timings['batch'] * 1000:8.2f} ms   "
        f"speedup {report['speedup']:5.2f}x   "
        f"{report['batch_messages_per_second']:10.0f} msg/s   "
        f"identical {identical}"
    )
    return report


def bench_mesh(args, width: int) -> dict:
    num_faults = max(1, int(round(args.fault_fraction * width * width)))
    scenario = generate_scenario(
        num_faults=num_faults,
        width=width,
        model=args.distribution,
        seed=args.seed,
    )
    session = MeshSession.from_scenario(scenario)
    enabled = session.route("mfp", messages=0).enabled
    print(f"-- {width}x{width}: {scenario.describe()}, enabled endpoints {enabled}")
    patterns = {
        traffic: bench_pattern(session, traffic, args.messages, args.seed, args.repeats)
        for traffic in args.patterns
    }
    return {
        "width": width,
        "num_faults": num_faults,
        "enabled": enabled,
        "patterns": patterns,
    }


def compare_reference(payload: dict, reference_path: Path) -> int:
    """Assert stats fields match the committed reference (timings ignored)."""
    reference = json.loads(reference_path.read_text())
    mismatches = 0
    compared = 0
    for width, mesh in payload["meshes"].items():
        reference_mesh = reference.get("meshes", {}).get(width)
        if reference_mesh is None:
            continue
        for traffic, report in mesh["patterns"].items():
            expected = reference_mesh["patterns"].get(traffic)
            if expected is None:
                continue
            compared += 1
            if report["stats"] != expected["stats"]:
                mismatches += 1
                print(
                    f"STATS REGRESSION {width}x{width}/{traffic}: "
                    f"{report['stats']} != reference {expected['stats']}"
                )
    print(f"[compared {compared} configurations against {reference_path}]")
    if compared == 0:
        print("WARNING: no overlapping configurations to compare")
    return mismatches


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--widths", type=int, nargs="+", default=[100, 200, 300],
        help="square mesh widths to sweep",
    )
    parser.add_argument("--messages", type=int, default=2000)
    parser.add_argument(
        "--fault-fraction", type=float, default=0.04,
        help="faults as a fraction of mesh nodes (0.04 matches the "
        "bench_traffic 100x100 / 400-fault scenario)",
    )
    parser.add_argument(
        "--distribution", choices=("random", "clustered"), default="clustered"
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--patterns", nargs="+", default=None,
        help="traffic registry keys (default: every registered workload)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="fail unless every configuration reaches this batch speedup",
    )
    parser.add_argument(
        "--compare", type=Path, default=None,
        help="reference JSON whose stats fields this run must reproduce",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)
    if args.patterns is None:
        args.patterns = list(traffic_keys())

    meshes = {str(width): bench_mesh(args, width) for width in args.widths}
    payload = {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "config": {
            "messages": args.messages,
            "fault_fraction": args.fault_fraction,
            "distribution": args.distribution,
            "seed": args.seed,
            "repeats": args.repeats,
            "construction": "mfp",
            "router": "extended-ecube",
        },
        "meshes": meshes,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[written to {args.out}]")

    exit_code = 0
    for mesh in meshes.values():
        for traffic, report in mesh["patterns"].items():
            if not report["identical"]:
                print(
                    f"ENGINE MISMATCH at {mesh['width']}x{mesh['width']}/{traffic}: "
                    "batch stats differ from the scalar router"
                )
                exit_code = 1
            if args.min_speedup and report["speedup"] < args.min_speedup:
                print(
                    f"SPEEDUP BELOW TARGET at {mesh['width']}x{mesh['width']}/"
                    f"{traffic}: {report['speedup']:.2f}x < {args.min_speedup}x"
                )
                exit_code = 1
    if args.compare is not None and compare_reference(payload, args.compare):
        exit_code = 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
