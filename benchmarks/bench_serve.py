#!/usr/bin/env python
"""Benchmark: the serving layer -- request coalescing and engine deltas.

Two sections, matching the acceptance bar of the serving subsystem:

**coalesce** -- drive one in-process :class:`repro.serve.RouteDaemon`
with N concurrent ``route`` requests (default 64), each carrying a small
batch of pairs (default 32 -- the shape of a simulator tick worth of
traffic), once with the micro-batching coalescer on (window + max-batch
triggers merge concurrent requests into one engine call) and once with
``max_batch=1`` (every request is its own engine call -- the
one-query-per-call baseline), and record sustained requests/second and
the coalesced/uncoalesced speedup.  The responses of the two runs must
be **bit-identical** per request; the benchmark exits non-zero when they
differ (``identical``).

**deltas** -- stream fault/repair churn into a warm session on a
clustered 100x100 mesh, routing a steady traffic mix after each event
(the warm-serving regime: the region working set is stable, faults
trickle in), and time ``update + route`` cycles with incremental engine
deltas on (``use_engine_deltas(True)``: jump tables and packed rings
delta-patched from the predecessor router) versus off (full rebuild per
update, the differential oracle).  The routed stats of the two modes
must be bit-identical (``identical``); the speedup is the rebuild time
over the delta time.

**overload** -- offer more load than the daemon admits: concurrent
clients hammer a daemon whose pending-pair queue is capped
(``max_pending``), once with admission control engaged (sheds respond
``overloaded`` + ``retry_after`` and the retrying clients back off) and
once with an effectively unbounded queue.  Recorded: shed rate and
p50/p99 completed-request latency in both modes.  Latencies are
timing-dependent and informational; the *stable* record -- every request
eventually completes through the retry path (``all_completed``) -- is
what the guard compares.

The measurements are written as machine-readable JSON (schema
``repro.bench_serve/v2``).  ``--compare`` checks the bit-identity
records, routed stats and overload-completion records of a run against a
previously committed reference -- the CI guard re-runs a small
configuration against ``benchmarks/results/BENCH_serve.json`` (timings
are informational only and never compared).

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py                        # full run
    PYTHONPATH=src python benchmarks/bench_serve.py \\
        --concurrency 16 --rounds 2 --delta-width 40 --out /tmp/serve.json # CI smoke
    PYTHONPATH=src python benchmarks/bench_serve.py --delta-width 40 \\
        --compare benchmarks/results/BENCH_serve.json                      # CI guard
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # allow running straight from a checkout
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

import numpy as np

from repro.api import MeshSession, use_engine_deltas
from repro.faults.scenario import generate_scenario
from repro.serve import InProcessClient, RetryPolicy, RouteDaemon

SCHEMA = "repro.bench_serve/v2"
DEFAULT_OUT = Path(__file__).parent / "results" / "BENCH_serve.json"

STATS_FIELDS = (
    "attempted",
    "delivered",
    "failed",
    "total_hops",
    "total_detour",
    "minimal_routes",
    "abnormal_routes",
)


def stats_fields(stats) -> dict:
    fields = {field: getattr(stats, field) for field in STATS_FIELDS}
    fields["array_backend"] = stats.backend
    return fields


# -- section 1: request coalescing ---------------------------------------------------


def run_serving(scenario, requests, rounds: int, *, coalesce: bool):
    """Serve every request concurrently; return (seconds, routes, stats).

    One daemon serves ``rounds`` waves of ``len(requests)`` concurrent
    ``route`` requests (each a list of pairs); the wall-clock of the
    best wave is returned with the (identical across waves) per-request
    outcomes.
    """
    daemon = RouteDaemon(
        scenario=scenario,
        window=0.001,
        max_batch=4096 if coalesce else 1,
    )
    client = InProcessClient(daemon)

    async def wave():
        responses = await asyncio.gather(
            *(client.route(request) for request in requests)
        )
        return [response["routes"] for response in responses]

    async def main():
        best = float("inf")
        routes = None
        for _ in range(rounds):
            start = time.perf_counter()
            routes = await wave()
            best = min(best, time.perf_counter() - start)
        return best, routes, daemon.coalescer.stats.as_dict()

    return asyncio.run(main())


def bench_coalesce(args) -> dict:
    scenario = generate_scenario(
        num_faults=args.serve_faults,
        width=args.serve_width,
        model="clustered",
        seed=args.seed,
    )
    rng = np.random.default_rng(args.seed)
    requests = [
        [
            [int(v) for v in rng.integers(0, args.serve_width, size=4)]
            for _ in range(args.pairs_per_request)
        ]
        for _ in range(args.concurrency)
    ]
    print(
        f"-- coalesce: {scenario.describe()}, concurrency {args.concurrency} x "
        f"{args.pairs_per_request} pairs, {args.rounds} rounds"
    )
    coalesced_s, coalesced_routes, coalesced_stats = run_serving(
        scenario, requests, args.rounds, coalesce=True
    )
    single_s, single_routes, single_stats = run_serving(
        scenario, requests, args.rounds, coalesce=False
    )
    identical = coalesced_routes == single_routes
    total_pairs = args.concurrency * args.pairs_per_request
    report = {
        "concurrency": args.concurrency,
        "pairs_per_request": args.pairs_per_request,
        "coalesced_seconds": coalesced_s,
        "uncoalesced_seconds": single_s,
        "coalesced_rps": args.concurrency / coalesced_s,
        "uncoalesced_rps": args.concurrency / single_s,
        "coalesced_pairs_per_second": total_pairs / coalesced_s,
        "uncoalesced_pairs_per_second": total_pairs / single_s,
        "speedup": single_s / coalesced_s,
        "coalesce_ratio": coalesced_stats["coalesce_ratio"],
        "identical": identical,
        "delivered": sum(
            1
            for routes in coalesced_routes
            for route in routes
            if route["delivered"]
        ),
    }
    print(
        f"   coalesced {coalesced_s * 1000:8.2f} ms "
        f"({report['coalesced_rps']:9.0f} req/s, ratio "
        f"{report['coalesce_ratio']:.1f})   one-per-call "
        f"{single_s * 1000:8.2f} ms ({report['uncoalesced_rps']:9.0f} req/s)   "
        f"speedup {report['speedup']:5.2f}x   identical {identical}"
    )
    return report


# -- section 2: incremental engine deltas --------------------------------------------


def churn_events(width: int, updates: int, seed: int):
    """Deterministic alternating add/repair churn for the delta section."""
    rng = np.random.default_rng(seed + 1)
    events = []
    injected = []
    for index in range(updates):
        if index % 3 == 2 and injected:
            events.append(("remove", [injected.pop(0)]))
        else:
            anchor = (int(rng.integers(1, width - 1)), int(rng.integers(1, width - 1)))
            cluster = [anchor, (anchor[0] + 1, anchor[1])]
            injected.extend(cluster)
            events.append(("add", cluster))
    return events


def run_churn(scenario, events, messages: int, seed: int, *, deltas: bool):
    """Apply every churn event and route after each; time update+route."""
    with use_engine_deltas(deltas):
        session = MeshSession.from_scenario(scenario)
        # Warm every cache on the initial fault set so the timed loop
        # measures updates, not first-touch construction.  The routed
        # traffic mix is the same after every event -- the warm-serving
        # regime, where the packed-ring working set is stable.
        session.route("mfp", messages=messages, seed=seed, engine="batch")
        fingerprints = []
        start = time.perf_counter()
        for kind, nodes in events:
            if kind == "add":
                session.add_faults(nodes)
            else:
                session.remove_faults(nodes)
            stats = session.route(
                "mfp", messages=messages, seed=seed, engine="batch"
            )
            fingerprints.append(stats_fields(stats))
        elapsed = time.perf_counter() - start
        info = dict(session.cache_info)
    return elapsed, fingerprints, info


def bench_ring_append(args) -> dict:
    """Progressive region encounters: incremental append vs full rebuild.

    ``PackedRings.ensure`` extends its flat arrays in place when a round
    encounters a new region; this times that path against the historical
    every-round re-concatenation (forced via the ``_dirty`` flag the
    fault-delta path uses) over the same encounter sequence, and checks
    the resulting arrays are bit-identical.
    """
    from repro.mesh.topology import Mesh2D
    from repro.routing.engine import PackedRings
    from repro.routing.extended_ecube import ExtendedECubeRouter

    rng = np.random.default_rng(args.seed + 3)
    width = args.delta_width
    regions, used = [], set()
    while len(regions) < args.ring_regions:
        x = int(rng.integers(1, width - 2))
        y = int(rng.integers(1, width - 1))
        cells = {(x, y), (x + 1, y)}
        if cells & used:
            continue
        used |= cells
        regions.append(sorted(cells))
    router = ExtendedECubeRouter(Mesh2D(width, width), regions)

    def encounter(force_rebuild: bool):
        rings = PackedRings(router)
        start = time.perf_counter()
        for index in range(len(regions)):
            if force_rebuild:
                rings._dirty = True
            rings.ensure(router, np.array([index]))
        return time.perf_counter() - start, rings

    encounter(False)  # warm the per-router ring geometry cache
    append_s, appended = encounter(False)
    rebuild_s, rebuilt = encounter(True)
    identical = all(
        np.array_equal(getattr(appended, name), getattr(rebuilt, name))
        for name in (
            "ring_x", "ring_y", "valid", "off_mesh", "geo_bits",
            "entry_keys", "entry_positions",
        )
    )
    report = {
        "regions": len(regions),
        "append_seconds": append_s,
        "rebuild_seconds": rebuild_s,
        "speedup": rebuild_s / append_s,
        "identical": identical,
    }
    print(
        f"   ring-append ({len(regions)} regions): append "
        f"{append_s * 1000:7.2f} ms   rebuild {rebuild_s * 1000:7.2f} ms   "
        f"speedup {report['speedup']:5.2f}x   identical {identical}"
    )
    return report


def bench_deltas(args) -> dict:
    scenario = generate_scenario(
        num_faults=args.delta_faults,
        width=args.delta_width,
        model="clustered",
        seed=args.seed,
    )
    events = churn_events(args.delta_width, args.updates, args.seed)
    print(
        f"-- deltas: {scenario.describe()}, {args.updates} updates, "
        f"{args.delta_messages} messages per route"
    )
    delta_s, delta_stats, delta_info = run_churn(
        scenario, events, args.delta_messages, args.seed, deltas=True
    )
    rebuild_s, rebuild_stats, rebuild_info = run_churn(
        scenario, events, args.delta_messages, args.seed, deltas=False
    )
    identical = delta_stats == rebuild_stats
    report = {
        "width": args.delta_width,
        "num_faults": args.delta_faults,
        "updates": args.updates,
        "messages": args.delta_messages,
        "delta_seconds": delta_s,
        "rebuild_seconds": rebuild_s,
        "updates_per_second_delta": args.updates / delta_s,
        "updates_per_second_rebuild": args.updates / rebuild_s,
        "speedup": rebuild_s / delta_s,
        "delta_applies": delta_info["delta_applies"],
        "jump_rebuilds_delta": delta_info["jump_rebuilds"],
        "jump_rebuilds_rebuild": rebuild_info["jump_rebuilds"],
        "identical": identical,
        "stats": delta_stats[-1],
    }
    print(
        f"   deltas {delta_s * 1000:8.2f} ms "
        f"({report['updates_per_second_delta']:7.1f} upd/s, "
        f"{report['delta_applies']} transplants)   rebuild "
        f"{rebuild_s * 1000:8.2f} ms "
        f"({report['updates_per_second_rebuild']:7.1f} upd/s)   "
        f"speedup {report['speedup']:5.2f}x   identical {identical}"
    )
    report["ring_append"] = bench_ring_append(args)
    return report


# -- section 3: overload and admission control ---------------------------------------


def run_overload(scenario, workloads, *, admission: bool, max_pending: int):
    """Offer every workload concurrently; return latency/shed measurements.

    Each workload is one client's list of route requests, issued
    sequentially with unbounded (deadline-capped) retries on
    ``overloaded`` sheds.  With *admission* the daemon's pending-pair
    queue is capped at *max_pending*; without, the cap is effectively
    infinite (nothing sheds, everything queues).
    """
    daemon = RouteDaemon(
        scenario=scenario,
        window=0.0005,
        max_batch=512,
        max_pending=max_pending if admission else 2**31,
    )
    client = InProcessClient(daemon)
    policy = RetryPolicy(
        max_attempts=None,
        base_delay=0.001,
        max_delay=0.05,
        jitter=0.0,
        deadline=120.0,
    )
    latencies = []
    attempts = 0

    async def worker(requests):
        nonlocal attempts
        for pairs in requests:
            schedule = policy.schedule()
            start = time.perf_counter()
            while True:
                attempts += 1
                response = await client.request({"op": "route", "pairs": pairs})
                if response["ok"]:
                    break
                if response["error"]["code"] != "overloaded":
                    raise RuntimeError(f"unexpected error: {response['error']}")
                delay = schedule.next_delay()
                if delay is None:
                    raise RuntimeError("retry deadline exhausted under overload")
                await asyncio.sleep(
                    max(delay, response["error"].get("retry_after", 0.0))
                )
            latencies.append(time.perf_counter() - start)

    async def main():
        start = time.perf_counter()
        await asyncio.gather(*(worker(requests) for requests in workloads))
        return time.perf_counter() - start

    elapsed = asyncio.run(main())
    offered = sum(len(requests) for requests in workloads)
    return {
        "elapsed_seconds": elapsed,
        "completed": len(latencies),
        "all_completed": len(latencies) == offered,
        "attempts": attempts,
        "shed_requests": daemon.shed_requests,
        "shed_rate": daemon.shed_requests / attempts if attempts else 0.0,
        "p50_latency_ms": float(np.percentile(latencies, 50)) * 1000,
        "p99_latency_ms": float(np.percentile(latencies, 99)) * 1000,
    }


def bench_overload(args) -> dict:
    scenario = generate_scenario(
        num_faults=args.serve_faults,
        width=args.serve_width,
        model="clustered",
        seed=args.seed,
    )
    rng = np.random.default_rng(args.seed + 2)
    workloads = [
        [
            [
                [int(v) for v in rng.integers(0, args.serve_width, size=4)]
                for _ in range(args.overload_pairs)
            ]
            for _ in range(args.overload_requests)
        ]
        for _ in range(args.overload_clients)
    ]
    offered = args.overload_clients * args.overload_requests
    print(
        f"-- overload: {scenario.describe()}, {args.overload_clients} clients x "
        f"{args.overload_requests} requests x {args.overload_pairs} pairs "
        f"(queue cap {args.overload_max_pending} pairs)"
    )
    shedding = run_overload(
        scenario, workloads, admission=True, max_pending=args.overload_max_pending
    )
    unbounded = run_overload(
        scenario, workloads, admission=False, max_pending=args.overload_max_pending
    )
    report = {
        "clients": args.overload_clients,
        "requests_per_client": args.overload_requests,
        "pairs_per_request": args.overload_pairs,
        "max_pending": args.overload_max_pending,
        "offered": offered,
        "with_admission": shedding,
        "without_admission": unbounded,
        "all_completed": shedding["all_completed"] and unbounded["all_completed"],
    }
    for label, run in (("admission", shedding), ("unbounded", unbounded)):
        print(
            f"   {label:>9}: shed {run['shed_rate'] * 100:5.1f}% "
            f"({run['shed_requests']}/{run['attempts']} attempts)   "
            f"p50 {run['p50_latency_ms']:7.2f} ms   "
            f"p99 {run['p99_latency_ms']:7.2f} ms   "
            f"completed {run['completed']}/{offered}"
        )
    return report


# -- guard and entry point -----------------------------------------------------------


def compare_reference(payload: dict, reference_path: Path) -> int:
    """Assert identity records and routed stats match the reference."""
    reference = json.loads(reference_path.read_text())
    mismatches = 0
    compared = 0
    for section in ("coalesce", "deltas", "overload"):
        ours = payload.get(section)
        expected = reference.get(section)
        if ours is None or expected is None:
            continue
        compared += 1
        if section == "overload":
            # Overload latencies are timing noise; the durable record is
            # that retries drove every offered request to completion.
            if not ours["all_completed"] or not expected["all_completed"]:
                mismatches += 1
                print("OVERLOAD REGRESSION: not every request completed")
            continue
        if not ours["identical"] or not expected["identical"]:
            mismatches += 1
            print(f"IDENTITY REGRESSION in section {section!r}")
        if section == "deltas" and ours.get("stats") != expected.get("stats"):
            if (
                ours.get("width") == expected.get("width")
                and ours.get("updates") == expected.get("updates")
                and ours.get("messages") == expected.get("messages")
            ):
                mismatches += 1
                print(
                    f"STATS REGRESSION in deltas: {ours.get('stats')} != "
                    f"reference {expected.get('stats')}"
                )
    print(f"[compared {compared} sections against {reference_path}]")
    if compared == 0:
        print("WARNING: no overlapping sections to compare")
    return mismatches


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--concurrency", type=int, default=64,
        help="concurrent route requests per wave (acceptance bar: 64)",
    )
    parser.add_argument(
        "--pairs-per-request", type=int, default=32,
        help="pairs carried by each route request (a tick worth of traffic)",
    )
    parser.add_argument(
        "--rounds", type=int, default=5, help="waves per mode (best is kept)"
    )
    parser.add_argument(
        "--serve-width", type=int, default=100,
        help="mesh width of the coalesce section",
    )
    parser.add_argument(
        "--serve-faults", type=int, default=400,
        help="faults of the coalesce-section scenario",
    )
    parser.add_argument(
        "--delta-width", type=int, default=100,
        help="mesh width of the delta section (acceptance bar: 100)",
    )
    parser.add_argument(
        "--delta-faults", type=int, default=800,
        help="initial faults of the delta-section scenario",
    )
    parser.add_argument(
        "--updates", type=int, default=12, help="churn events in the delta section"
    )
    parser.add_argument(
        "--ring-regions", type=int, default=64,
        help="regions encountered one-by-one in the ring-append "
        "measurement of the delta section",
    )
    parser.add_argument(
        "--delta-messages", type=int, default=128,
        help="messages routed after each update (small, so update cost "
        "dominates the timing)",
    )
    parser.add_argument(
        "--overload-clients", type=int, default=32,
        help="concurrent clients of the overload section",
    )
    parser.add_argument(
        "--overload-requests", type=int, default=8,
        help="sequential route requests per overload client",
    )
    parser.add_argument(
        "--overload-pairs", type=int, default=16,
        help="pairs carried by each overload request",
    )
    parser.add_argument(
        "--overload-max-pending", type=int, default=64,
        help="pending-pair queue cap of the admission-controlled run "
        "(kept below clients x pairs so the offered load genuinely "
        "exceeds capacity)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--min-coalesce-speedup", type=float, default=None,
        help="fail unless coalescing reaches this speedup over one-per-call",
    )
    parser.add_argument(
        "--min-delta-speedup", type=float, default=None,
        help="fail unless deltas reach this speedup over full rebuilds",
    )
    parser.add_argument(
        "--compare", type=Path, default=None,
        help="reference JSON whose identity/stats records this run must "
        "reproduce",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    coalesce = bench_coalesce(args)
    deltas = bench_deltas(args)
    overload = bench_overload(args)
    payload = {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "config": {
            "concurrency": args.concurrency,
            "pairs_per_request": args.pairs_per_request,
            "rounds": args.rounds,
            "serve_width": args.serve_width,
            "serve_faults": args.serve_faults,
            "delta_width": args.delta_width,
            "delta_faults": args.delta_faults,
            "updates": args.updates,
            "delta_messages": args.delta_messages,
            "overload_clients": args.overload_clients,
            "overload_requests": args.overload_requests,
            "overload_pairs": args.overload_pairs,
            "overload_max_pending": args.overload_max_pending,
            "seed": args.seed,
            "construction": "mfp",
            "router": "extended-ecube",
        },
        "coalesce": coalesce,
        "deltas": deltas,
        "overload": overload,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[written to {args.out}]")

    exit_code = 0
    if not coalesce["identical"]:
        print("SERVE MISMATCH: coalesced responses differ from one-per-call")
        exit_code = 1
    if not deltas["identical"]:
        print("DELTA MISMATCH: delta-patched stats differ from full rebuilds")
        exit_code = 1
    if not overload["all_completed"]:
        print("OVERLOAD FAILURE: some requests never completed through retries")
        exit_code = 1
    if (
        args.min_coalesce_speedup
        and coalesce["speedup"] < args.min_coalesce_speedup
    ):
        print(
            f"COALESCE SPEEDUP BELOW TARGET: {coalesce['speedup']:.2f}x < "
            f"{args.min_coalesce_speedup}x"
        )
        exit_code = 1
    if args.min_delta_speedup and deltas["speedup"] < args.min_delta_speedup:
        print(
            f"DELTA SPEEDUP BELOW TARGET: {deltas['speedup']:.2f}x < "
            f"{args.min_delta_speedup}x"
        )
        exit_code = 1
    if args.compare is not None and compare_reference(payload, args.compare):
        exit_code = 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
