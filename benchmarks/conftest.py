"""Shared helpers for the benchmark harness.

Every figure of the paper's evaluation has one benchmark module.  The
benchmarks have two jobs:

1. time the constructions (pytest-benchmark statistics), and
2. regenerate the figure's data series and persist them under
   ``benchmarks/results/`` so that EXPERIMENTS.md can record
   paper-vs-measured values.

The sweeps default to a reduced number of trials so that the whole harness
finishes in a couple of minutes; set the environment variable
``REPRO_BENCH_TRIALS`` to raise the trial count for smoother curves.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

#: Fault counts swept by the paper (Figures 9-11 x axis).
FAULT_COUNTS = (100, 200, 300, 400, 500, 600, 700, 800)

#: Mesh width/height used by the paper's simulation.
MESH_WIDTH = 100

#: Trials per sweep point (the paper averages many runs; 2 keeps CI quick).
TRIALS = int(os.environ.get("REPRO_BENCH_TRIALS", "2"))

#: Worker processes for the sweep trials (repro.api.SweepExecutor); 1 keeps
#: the timing benchmarks single-process, raise it for faster figure sweeps.
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))

RESULTS_DIR = Path(__file__).parent / "results"


def record_result(name: str, text: str) -> None:
    """Persist a rendered figure table under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    # Also echo to stdout so `pytest -s` shows the series inline.
    print(f"\n{text}\n[written to {path}]")


@pytest.fixture(scope="session")
def fault_counts():
    """The paper's fault-count sweep."""
    return FAULT_COUNTS


@pytest.fixture(scope="session")
def mesh_width():
    """The paper's mesh width (100)."""
    return MESH_WIDTH


@pytest.fixture(scope="session")
def trials():
    """Trials per sweep point."""
    return TRIALS
