"""Benchmark: incremental MeshSession updates vs full rebuilds.

Replays the paper's simulation shape -- faults sequentially added to a
100x100 mesh with the constructions re-run after every batch (Figures
9-11) -- two ways:

* **full**: a fresh one-shot build of the construction after every batch,
  which is what ``run_sweep`` historically did per point;
* **incremental**: one :class:`repro.api.MeshSession` that absorbs each
  batch with ``add_faults`` and rebuilds through its dirty-component
  cache, so only components touched by the new faults are recomputed.

Both paths must produce identical results at every step (asserted); the
recorded table reports the wall-clock ratio.
"""

from __future__ import annotations

import time

from conftest import MESH_WIDTH, record_result

from repro.api import MeshSession, get_construction
from repro.faults.scenario import generate_scenario

#: Sequential-insertion schedule: 16 batches of 50 faults, i.e. the paper's
#: 100..800 sweep replayed on a single evolving fault pattern.
NUM_BATCHES = 16
BATCH_SIZE = 50


def _batches(width: int):
    scenario = generate_scenario(
        num_faults=NUM_BATCHES * BATCH_SIZE,
        width=width,
        model="clustered",
        seed=7,
    )
    faults = list(scenario.faults)
    topology = scenario.topology()
    return topology, [
        faults[i * BATCH_SIZE : (i + 1) * BATCH_SIZE] for i in range(NUM_BATCHES)
    ]


def _run_sequential(key: str, width: int = MESH_WIDTH):
    topology, batches = _batches(width)
    spec = get_construction(key)

    session = MeshSession(topology=topology)
    incremental_results = []
    start = time.perf_counter()
    for batch in batches:
        session.add_faults(batch)
        incremental_results.append(session.build(key))
    incremental_seconds = time.perf_counter() - start

    full_results = []
    prefix = []
    start = time.perf_counter()
    for batch in batches:
        prefix.extend(batch)
        full_results.append(spec.build(prefix, topology))
    full_seconds = time.perf_counter() - start

    for step, (inc, full) in enumerate(zip(incremental_results, full_results)):
        assert inc.disabled_set() == full.disabled_set(), (key, step)
        assert inc.rounds == full.rounds, (key, step)
        assert inc.num_regions == full.num_regions, (key, step)
    return incremental_seconds, full_seconds, session.cache_info


def test_incremental_sequential_sweep():
    """Sequential-fault sweep: incremental session vs full rebuilds."""
    lines = [
        f"Incremental MeshSession vs full rebuilds "
        f"({MESH_WIDTH}x{MESH_WIDTH} mesh, {NUM_BATCHES} batches of "
        f"{BATCH_SIZE} clustered faults)",
        f"{'model':>6} {'full (s)':>10} {'incremental (s)':>16} {'speedup':>8}",
    ]
    for key in ("mfp", "cmfp", "dmfp"):
        incremental_seconds, full_seconds, cache_info = _run_sequential(key)
        speedup = full_seconds / incremental_seconds if incremental_seconds else 0.0
        lines.append(
            f"{key:>6} {full_seconds:>10.3f} {incremental_seconds:>16.3f} "
            f"{speedup:>7.2f}x"
        )
        # The identical-results assertions live in _run_sequential; here we
        # only require that incrementality does not lose time outright.
        assert speedup > 1.0, (key, speedup, cache_info)
    record_result("api_incremental", "\n".join(lines))
