"""Figure 11: average number of rounds for status determination.

Reproduces both panels of Figure 11 (random and clustered fault
distributions): rounds of neighbour information exchange needed by the
rectangular faulty block construction (FB), the sub-minimum faulty polygon
construction (FP), the centralized minimum faulty polygon construction
(CMFP) and the distributed one (DMFP), on the 100x100 mesh over the fault
sweep.  The paper's qualitative findings checked here:

* FP needs more rounds than FB (extra labelling-scheme-2 rounds);
* CMFP needs far fewer rounds than FB (components are much smaller than
  merged faulty blocks);
* DMFP needs more rounds than CMFP (the ring must circle each component)
  but remains well below FP on the random distribution.
"""

import pytest

from repro.sim.experiments import run_sweep
from repro.sim.figures import figure11_series, format_series_table

from conftest import WORKERS, record_result


def _run_panel(distribution, fault_counts, trials, mesh_width):
    return run_sweep(
        fault_counts=fault_counts,
        trials=trials,
        width=mesh_width,
        distribution=distribution,
        include_distributed=True,
        include_rounds=True,
        workers=WORKERS,
    )


@pytest.mark.parametrize("distribution", ["random", "clustered"])
def test_figure11_panel(benchmark, distribution, fault_counts, trials, mesh_width):
    points = benchmark.pedantic(
        _run_panel,
        args=(distribution, fault_counts, trials, mesh_width),
        rounds=1,
        iterations=1,
    )
    figure = figure11_series(distribution=distribution, points=points)
    record_result(f"figure11_{distribution}", format_series_table(figure))

    for index, _ in enumerate(figure.x_values):
        assert figure.series["FP"][index] >= figure.series["FB"][index]
        assert figure.series["CMFP"][index] <= figure.series["DMFP"][index]
    # At the high end of the sweep the centralized per-component emulation
    # needs fewer rounds than the whole-network FP labelling; on the random
    # distribution (where merged blocks dwarf the components) it also beats
    # FB and the distributed construction stays below FP.
    assert figure.series["CMFP"][-1] <= figure.series["FP"][-1]
    if distribution == "random":
        assert figure.series["CMFP"][-1] < figure.series["FB"][-1]
        assert figure.series["DMFP"][-1] <= figure.series["FP"][-1]
