"""Ablation: sensitivity of the MFP advantage to the cluster strength.

The paper's clustered fault distribution doubles the failure rate of the
eight neighbours of every inserted fault.  This ablation sweeps the
multiplier (2 = the paper's setting) and records how the number of
non-faulty nodes sacrificed by FB and MFP changes: heavier clustering makes
faulty blocks much worse while minimum polygons stay close to the fault
count, so the relative advantage of the paper's model grows.
"""


from repro.core.faulty_block import build_faulty_blocks
from repro.core.mfp import build_minimum_polygons
from repro.faults.scenario import generate_scenario

from conftest import record_result

FACTORS = (1.0, 2.0, 4.0, 8.0)
NUM_FAULTS = 400
WIDTH = 100
SEEDS = (0, 1)


def _sweep_cluster_factor():
    rows = []
    for factor in FACTORS:
        fb_total, mfp_total = 0, 0
        for seed in SEEDS:
            scenario = generate_scenario(
                num_faults=NUM_FAULTS,
                width=WIDTH,
                model="clustered",
                seed=seed,
                cluster_factor=factor,
            )
            topology = scenario.topology()
            fb_total += build_faulty_blocks(
                scenario.faults, topology=topology
            ).num_disabled_nonfaulty
            mfp_total += build_minimum_polygons(
                scenario.faults, topology=topology, compute_rounds=False
            ).num_disabled_nonfaulty
        rows.append((factor, fb_total / len(SEEDS), mfp_total / len(SEEDS)))
    return rows


def test_cluster_factor_ablation(benchmark):
    rows = benchmark.pedantic(_sweep_cluster_factor, rounds=1, iterations=1)
    lines = [
        f"Cluster-factor ablation: {WIDTH}x{WIDTH} mesh, {NUM_FAULTS} faults",
        f"{'factor':>7} {'FB disabled':>12} {'MFP disabled':>13} {'MFP saving':>11}",
    ]
    for factor, fb, mfp in rows:
        saving = 1.0 - mfp / fb if fb else 0.0
        lines.append(f"{factor:>7.1f} {fb:>12.1f} {mfp:>13.1f} {saving:>11.2%}")
    record_result("ablation_cluster_factor", "\n".join(lines))

    # MFP never sacrifices more nodes than FB at any clustering strength.
    for _, fb, mfp in rows:
        assert mfp <= fb
    # Heavier clustering inflates faulty blocks.
    assert rows[-1][1] >= rows[0][1]
