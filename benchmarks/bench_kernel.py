#!/usr/bin/env python
"""Differential benchmark: the bitmask kernel vs the set-based oracle.

Runs the MFP / CMFP / DMFP constructions twice on the same scenario -- once
with the :mod:`repro.geometry.masks` kernel enabled (the default code path)
and once with it switched off (the legacy set-based implementations, kept
as the differential-test oracle) -- asserts the results are bit-identical,
and times both.  A routing-sweep benchmark then measures the cost of
repeated router instantiations, comparing the region-index fast path
against a faithful re-enactment of the pre-kernel per-node dict build.

The measurements are written as machine-readable JSON (see the README's
"Performance" section for the schema); the committed reference run lives at
``benchmarks/results/BENCH_kernel.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py                  # full 300x300 run
    PYTHONPATH=src python benchmarks/bench_kernel.py --width 40 \\
        --num-faults 60 --trials 1 --out /tmp/bench.json              # CI smoke
    PYTHONPATH=src python benchmarks/bench_kernel.py --min-speedup 5  # enforce the bar
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # allow running straight from a checkout
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

import numpy as np

from repro._array_ops import active_backend_key
from repro.core.mfp import build_minimum_polygons
from repro.distributed.dmfp import build_minimum_polygons_distributed
from repro.faults.scenario import generate_scenario
from repro.geometry import masks
from repro.routing.registry import get_router
from repro.routing.traffic import TrafficContext, get_traffic

SCHEMA = "repro.bench_kernel/v1"
DEFAULT_OUT = Path(__file__).parent / "results" / "BENCH_kernel.json"


def _best_time(fn, trials: int):
    """Return ``(best_seconds, last_result)`` over *trials* runs of *fn*."""
    best = float("inf")
    result = None
    for _ in range(trials):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _compare(kernel, oracle) -> list:
    """Return the list of differences between two construction results."""
    problems = []
    if not np.array_equal(kernel.grid.disabled, oracle.grid.disabled):
        problems.append("disabled masks differ")
    if not np.array_equal(kernel.grid.unsafe, oracle.grid.unsafe):
        problems.append("unsafe masks differ")
    if [r.nodes for r in kernel.regions] != [r.nodes for r in oracle.regions]:
        problems.append("region node sets differ")
    if [r.faulty_nodes for r in kernel.regions] != [
        r.faulty_nodes for r in oracle.regions
    ]:
        problems.append("region fault sets differ")
    if kernel.rounds != oracle.rounds:
        problems.append(f"rounds differ ({kernel.rounds} != {oracle.rounds})")
    if kernel.num_disabled_nonfaulty != oracle.num_disabled_nonfaulty:
        problems.append("disabled-nonfaulty counts differ")
    if kernel.mean_region_size != oracle.mean_region_size:
        problems.append("mean region sizes differ")
    return problems


def _seed_style_router_setup(topology, regions):
    """Re-enact the pre-kernel router instantiation cost.

    The original router built a node -> region dict and a disabled set with
    one Python loop iteration per region node, and the simulator scanned
    every grid node through ``is_disabled``; this reproduces exactly those
    loops so the sweep benchmark has a faithful baseline.
    """
    disabled = set()
    region_of = {}
    for index, region in enumerate(regions):
        for node in region.nodes:
            disabled.add(node)
            region_of[node] = index
    enabled = [node for node in topology.nodes() if node not in disabled]
    return disabled, region_of, enabled


def bench_constructions(scenario, topology, trials: int) -> dict:
    builders = {
        "mfp": lambda: build_minimum_polygons(
            scenario.faults, topology=topology, compute_rounds=False
        ),
        "cmfp": lambda: build_minimum_polygons(
            scenario.faults, topology=topology, compute_rounds=True
        ),
        "dmfp": lambda: build_minimum_polygons_distributed(
            scenario.faults, topology=topology
        ),
    }
    report = {}
    for key, builder in builders.items():
        # Symmetric best-of-N on both paths so the speedup is unbiased.
        with masks.use_kernel(True):
            kernel_s, kernel_result = _best_time(builder, trials)
        with masks.use_kernel(False):
            legacy_s, legacy_result = _best_time(builder, trials)
        problems = _compare(kernel_result, legacy_result)
        if problems:
            raise SystemExit(
                f"BENCH FAILED: {key} kernel/oracle mismatch: {', '.join(problems)}"
            )
        report[key] = {
            "kernel_seconds": kernel_s,
            "legacy_seconds": legacy_s,
            "speedup": legacy_s / kernel_s,
            "identical": True,
            "num_regions": len(kernel_result.regions),
            "disabled_nonfaulty": kernel_result.num_disabled_nonfaulty,
            "rounds": kernel_result.rounds,
        }
        print(
            f"{key:>5}: kernel {kernel_s * 1000:8.1f} ms   "
            f"legacy {legacy_s * 1000:8.1f} ms   "
            f"speedup {report[key]['speedup']:5.2f}x   identical"
        )
    return report


def bench_routing(scenario, topology, builds: int, messages: int, seed: int) -> dict:
    """Time instantiation-heavy routing sweeps (one router per fault batch).

    Sequential-fault sweeps rebuild the router after every construction
    update, so the per-instantiation cost -- previously a Python dict entry
    per region node plus a full-grid ``is_disabled`` scan -- is what the
    region-index fast path removes.  The routing scenario uses the paper's
    fault density (8%), where messages are cheap enough that instantiation
    overhead is visible, as it is in the real sweeps.
    """
    with masks.use_kernel(True):
        construction = build_minimum_polygons(
            scenario.faults, topology=topology, compute_rounds=False
        )
    router_spec = get_router("extended-ecube")
    uniform = get_traffic("uniform")

    def _instantiate():
        router = router_spec.build(construction)
        return router, TrafficContext.from_router(router)

    def _route_batch(batch_seed):
        router, context = _instantiate()
        batch = uniform.generate(context, messages, seed=batch_seed)
        return sum(
            1
            for source, destination in batch.pairs()
            if router.route(source, destination).delivered
        )

    def kernel_sweep():
        return sum(_route_batch(seed + build) for build in range(builds))

    def legacy_sweep():
        total = 0
        for build in range(builds):
            _seed_style_router_setup(topology, construction.regions)
            total += _route_batch(seed + build)
        return total

    def kernel_instantiate():
        for _ in range(builds):
            _instantiate()

    def legacy_instantiate():
        for _ in range(builds):
            _seed_style_router_setup(topology, construction.regions)

    kernel_inst_s, _ = _best_time(kernel_instantiate, 2)
    legacy_inst_s, _ = _best_time(legacy_instantiate, 2)
    kernel_s, kernel_delivered = _best_time(kernel_sweep, 1)
    legacy_s, legacy_delivered = _best_time(legacy_sweep, 1)
    if kernel_delivered != legacy_delivered:
        raise SystemExit("BENCH FAILED: routing sweeps disagree on deliveries")
    report = {
        "num_faults": len(scenario.faults),
        "instantiations": builds,
        "messages_per_instantiation": messages,
        "kernel_instantiation_seconds": kernel_inst_s,
        "legacy_instantiation_seconds": legacy_inst_s,
        "instantiation_speedup": legacy_inst_s / kernel_inst_s,
        "kernel_seconds": kernel_s,
        "legacy_seconds": legacy_s,
        "speedup": legacy_s / kernel_s,
        "delivered": int(kernel_delivered),
    }
    print(
        f"route: kernel {kernel_s * 1000:8.1f} ms   "
        f"legacy {legacy_s * 1000:8.1f} ms   "
        f"speedup {report['speedup']:5.2f}x end-to-end, "
        f"{report['instantiation_speedup']:5.2f}x instantiation   "
        f"({builds} routers x {messages} messages)"
    )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--width", type=int, default=300)
    parser.add_argument("--height", type=int, default=None)
    parser.add_argument("--num-faults", type=int, default=27000)
    parser.add_argument("--model", default="clustered")
    parser.add_argument("--cluster-factor", type=float, default=8.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument("--routing-builds", type=int, default=60)
    parser.add_argument("--routing-messages", type=int, default=200)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail unless the MFP and CMFP construction speedups reach this bar",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    scenario = generate_scenario(
        num_faults=args.num_faults,
        width=args.width,
        height=args.height,
        model=args.model,
        seed=args.seed,
        cluster_factor=args.cluster_factor,
    )
    topology = scenario.topology()
    print(
        f"bench_kernel: {topology.width}x{topology.height} mesh, "
        f"{len(scenario.faults)} faults ({args.model}, "
        f"cluster_factor={args.cluster_factor}, seed={args.seed})"
    )

    constructions = bench_constructions(scenario, topology, args.trials)
    routing_scenario = generate_scenario(
        num_faults=max(1, int(topology.width * topology.height * 0.08)),
        width=args.width,
        height=args.height,
        model=args.model,
        seed=args.seed,
        cluster_factor=args.cluster_factor,
    )
    routing = bench_routing(
        routing_scenario,
        topology,
        args.routing_builds,
        args.routing_messages,
        args.seed,
    )

    try:
        import scipy

        scipy_version = scipy.__version__
    except ImportError:
        scipy_version = None
    payload = {
        "schema": SCHEMA,
        "mesh": {"width": topology.width, "height": topology.height},
        "scenario": {
            "num_faults": len(scenario.faults),
            "model": args.model,
            "cluster_factor": args.cluster_factor,
            "seed": args.seed,
        },
        "trials": args.trials,
        "constructions": constructions,
        "routing": routing,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "scipy": scipy_version,
            "array_backend": active_backend_key(),
        },
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.min_speedup > 0:
        for key in ("mfp", "cmfp"):
            speedup = constructions[key]["speedup"]
            if speedup < args.min_speedup:
                print(
                    f"BENCH FAILED: {key} speedup {speedup:.2f}x "
                    f"< required {args.min_speedup:.2f}x"
                )
                return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
