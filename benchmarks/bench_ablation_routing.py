"""Ablation: how the fault-region model affects the routing layer.

Not a figure of the paper, but the motivation behind it (Sections 1-2): a
fault model that disables fewer non-faulty nodes leaves more nodes usable
as message endpoints and causes fewer/shorter detours.  This benchmark
routes the same random traffic over FB, FP and MFP regions built from the
same fault pattern and records delivery rate, mean hops, detour and the
routing throughput (``time.perf_counter`` timings, like every routing
bench).
"""

import time

from repro.api import MeshSession, MinimumPolygonOptions
from repro.faults.scenario import generate_scenario

from conftest import record_result

NUM_MESSAGES = 400

#: The routing comparison never reads the CMFP round counts.
CONSTRUCTION_OPTIONS = {"mfp": MinimumPolygonOptions(compute_rounds=False)}


def _routing_comparison(num_faults, width, seed):
    scenario = generate_scenario(
        num_faults=num_faults, width=width, model="clustered", seed=seed
    )
    session = MeshSession.from_scenario(scenario)
    rows = {}
    for key in ("fb", "fp", "mfp"):
        route = dict(
            traffic="uniform",
            messages=NUM_MESSAGES,
            seed=seed,
            construction_options=CONSTRUCTION_OPTIONS.get(key),
        )
        session.route(key, **route)  # warm construction/router/ring caches
        start = time.perf_counter()
        stats = session.route(key, **route)
        routing_s = time.perf_counter() - start
        rows[stats.model] = {
            "enabled_nodes": stats.enabled,
            "delivery_rate": stats.delivery_rate,
            "mean_hops": stats.mean_hops,
            "mean_detour": stats.mean_detour,
            "abnormal_fraction": stats.abnormal_fraction,
            "messages_per_second": (
                stats.attempted / routing_s if routing_s else 0.0
            ),
            "engine": stats.engine,
        }
    return rows


def test_routing_ablation(benchmark):
    rows = benchmark.pedantic(
        _routing_comparison, args=(200, 60, 7), rounds=1, iterations=1
    )
    lines = [
        "Routing ablation: 60x60 mesh, 200 clustered faults, 400 messages",
        f"{'model':>6} {'enabled':>8} {'delivery':>9} {'hops':>7} {'detour':>7} "
        f"{'abnormal':>9} {'msg/s':>9} {'engine':>7}",
    ]
    for name, row in rows.items():
        lines.append(
            f"{name:>6} {row['enabled_nodes']:>8} {row['delivery_rate']:>9.3f} "
            f"{row['mean_hops']:>7.2f} {row['mean_detour']:>7.2f} "
            f"{row['abnormal_fraction']:>9.3f} {row['messages_per_second']:>9.0f} "
            f"{row['engine']:>7}"
        )
    record_result("ablation_routing", "\n".join(lines))

    # The minimum polygons keep at least as many endpoints usable as the
    # coarser models and never hurt deliverability.
    assert rows["MFP"]["enabled_nodes"] >= rows["FP"]["enabled_nodes"]
    assert rows["FP"]["enabled_nodes"] >= rows["FB"]["enabled_nodes"]
    assert rows["MFP"]["delivery_rate"] >= rows["FB"]["delivery_rate"] - 0.05
