"""Figure 10: average size of a fault region (FB / FP / MFP).

Reproduces both panels of Figure 10 (random and clustered fault
distributions) on the 100x100 mesh.  The paper reports that the average
size of the minimum faulty polygon is the smallest of the three models and
that, under the clustered distribution, faulty blocks grow much faster than
minimum polygons as faults accumulate.
"""

import pytest

from repro.sim.experiments import run_sweep
from repro.sim.figures import figure10_series, format_series_table

from conftest import WORKERS, record_result


def _run_panel(distribution, fault_counts, trials, mesh_width):
    return run_sweep(
        fault_counts=fault_counts,
        trials=trials,
        width=mesh_width,
        distribution=distribution,
        include_distributed=False,
        include_rounds=False,
        workers=WORKERS,
    )


@pytest.mark.parametrize("distribution", ["random", "clustered"])
def test_figure10_panel(benchmark, distribution, fault_counts, trials, mesh_width):
    points = benchmark.pedantic(
        _run_panel,
        args=(distribution, fault_counts, trials, mesh_width),
        rounds=1,
        iterations=1,
    )
    figure = figure10_series(distribution=distribution, points=points)
    record_result(f"figure10_{distribution}", format_series_table(figure))

    for index, _ in enumerate(figure.x_values):
        assert (
            figure.series["MFP"][index]
            <= figure.series["FP"][index]
            <= figure.series["FB"][index]
        )
    # Block sizes grow with the fault count; minimum polygons barely do.
    fb_growth = figure.series["FB"][-1] - figure.series["FB"][0]
    mfp_growth = figure.series["MFP"][-1] - figure.series["MFP"][0]
    assert fb_growth >= mfp_growth


def test_figure10_clustered_blocks_larger_than_random(
    benchmark, fault_counts, trials, mesh_width
):
    """Cross-panel claim: clustered faulty blocks are larger than random ones."""

    def both():
        random_points = _run_panel("random", fault_counts[-2:], trials, mesh_width)
        clustered_points = _run_panel("clustered", fault_counts[-2:], trials, mesh_width)
        return random_points, clustered_points

    random_points, clustered_points = benchmark.pedantic(both, rounds=1, iterations=1)
    random_fb = figure10_series(points=random_points).series["FB"][-1]
    clustered_fb = figure10_series(
        distribution="clustered", points=clustered_points
    ).series["FB"][-1]
    record_result(
        "figure10_cross_panel",
        "FB mean region size at {} faults: random={:.2f} clustered={:.2f} ratio={:.2f}".format(
            fault_counts[-1], random_fb, clustered_fb, clustered_fb / random_fb
        ),
    )
    assert clustered_fb > random_fb
