#!/usr/bin/env python
"""Benchmark: latency-vs-load saturation curves of the network simulator.

Replays open-loop Poisson traffic through the contention simulator of
``repro.netsim`` over a grid of offered loads, on fault-free and
clustered-fault meshes, and records the full latency/throughput statistics
per point: the classic saturation evaluation (flat hop-latency floor,
queueing rise, throughput knee) the paper's contention-free statistics
cannot produce.  Each scenario additionally runs the whole spatial traffic
suite at one moderate load, once through the vectorised array simulator
and once through the scalar dict-based oracle; the two must be
**bit-identical** (witnessed by ``NetSimStats.delivery_fingerprint``) and
the benchmark exits non-zero when any run disagrees.

The measurements are written as machine-readable JSON (schema
``repro.bench_saturation/v1``).  ``--compare`` checks the integer fields
and delivery fingerprints of a run against a previously committed
reference -- the CI regression guard re-runs the 16x16 scenarios and
compares them against ``benchmarks/results/BENCH_saturation.json``
(timings are informational only and never compared).  ``--require-knee``
additionally asserts the curve shape: every curve monotone over its
non-deadlocked points, and at least one clustered scenario crossing a
throughput knee (stable -> saturated with rising latency).

Usage::

    PYTHONPATH=src python benchmarks/bench_saturation.py                  # 16 + 32 reference
    PYTHONPATH=src python benchmarks/bench_saturation.py \\
        --widths 8 --clustered-faults 4 --loads 0.02 0.08 \\
        --cycles 64 --out /tmp/saturation.json                            # CI smoke
    PYTHONPATH=src python benchmarks/bench_saturation.py --widths 16 \\
        --clustered-faults 10 --require-knee \\
        --compare benchmarks/results/BENCH_saturation.json               # CI guard
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # allow running straight from a checkout
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

import numpy as np

from repro.api import MeshSession, traffic_keys
from repro.faults.scenario import generate_scenario
from repro.netsim import simulator_keys

SCHEMA = "repro.bench_saturation/v1"
DEFAULT_OUT = Path(__file__).parent / "results" / "BENCH_saturation.json"

#: NetSimStats fields that must be bit-identical between simulators and
#: against the committed reference (all integers/bools -- JSON-exact).
STATS_FIELDS = (
    "attempted",
    "unroutable",
    "delivered",
    "in_flight",
    "total_latency",
    "total_queueing",
    "total_hops",
    "cycles_run",
    "saturated",
    "deadlocked",
)


def stats_fields(stats) -> dict:
    fields = {field: getattr(stats, field) for field in STATS_FIELDS}
    # The effective array backend is part of the compared record: a
    # reference produced under one backend cannot silently pass the
    # ``--compare`` guard of a run under another.
    fields["array_backend"] = stats.backend
    return fields


def spatial_patterns() -> list:
    """Every registered spatial workload (the arrival processes excluded)."""
    from repro.routing.traffic import ArrivalOptions, get_traffic

    return [
        key
        for key in traffic_keys()
        if not issubclass(get_traffic(key).options_type, ArrivalOptions)
    ]


def point_report(stats) -> dict:
    return {
        "fields": stats_fields(stats),
        "fingerprint": stats.delivery_fingerprint,
        "mean_latency": stats.mean_latency,
        "mean_queueing": stats.mean_queueing,
        "accepted_load": stats.accepted_load,
    }


def bench_pattern(session, traffic, args, run_oracle: bool) -> dict:
    """One spatial pattern at the moderate pattern load, both simulators."""
    kwargs = dict(
        traffic=traffic,
        arrival=args.arrival,
        load=args.pattern_load,
        cycles=args.cycles,
        seed=args.seed,
        drain_factor=args.drain_factor,
    )
    start = time.perf_counter()
    array_stats = session.simulate("mfp", sim="array", **kwargs)
    array_seconds = time.perf_counter() - start
    report = point_report(array_stats)
    report["array_seconds"] = array_seconds
    identical = True
    if run_oracle:
        start = time.perf_counter()
        scalar_stats = session.simulate("mfp", sim="scalar", **kwargs)
        scalar_seconds = time.perf_counter() - start
        identical = (
            array_stats.delivery_fingerprint == scalar_stats.delivery_fingerprint
            and stats_fields(array_stats) == stats_fields(scalar_stats)
            and np.array_equal(array_stats.busy, scalar_stats.busy)
        )
        report["scalar_seconds"] = scalar_seconds
        report["speedup"] = scalar_seconds / array_seconds
    report["identical"] = identical
    oracle_note = (
        f"   oracle {'ok' if identical else 'MISMATCH'}" if run_oracle else ""
    )
    state = (
        "deadlock" if array_stats.deadlocked
        else "saturated" if array_stats.saturated else "stable"
    )
    print(
        f"  {traffic:>18} delivered {array_stats.delivered:6d}/"
        f"{array_stats.attempted:<6d} latency {array_stats.mean_latency:8.2f} "
        f"[{state}]{oracle_note}"
    )
    return report


def curve_checks(curve: list) -> dict:
    """Shape verdicts of one latency-vs-load curve.

    ``monotone`` ignores deadlocked points: a deadlocked run stops early
    and only counts the quick deliveries, so its mean latency is not
    comparable.  The knee is the first saturated load; ``knee_rising``
    asserts the latency actually climbed across it.
    """
    live = [p for p in curve if not p["fields"]["deadlocked"]]
    latencies = [p["mean_latency"] for p in live]
    monotone = all(a <= b + 1e-9 for a, b in zip(latencies, latencies[1:]))
    knee_load = None
    knee_rising = False
    stable_latency = None
    for point in curve:
        if point["fields"]["saturated"]:
            knee_load = point["load"]
            knee_rising = (
                stable_latency is not None
                and point["mean_latency"] > stable_latency
            )
            break
        stable_latency = point["mean_latency"]
    return {"monotone": monotone, "knee_load": knee_load, "knee_rising": knee_rising}


def bench_scenario(args, width: int, num_faults: int) -> dict:
    distribution = "fault-free" if num_faults == 0 else "clustered"
    if num_faults:
        scenario = generate_scenario(
            num_faults=num_faults,
            width=width,
            model="clustered",
            seed=args.scenario_seed,
        )
        session = MeshSession.from_scenario(scenario)
    else:
        session = MeshSession(width=width)
    run_oracle = width <= args.oracle_width
    probe = session.simulate(
        "mfp", load=args.loads[0], cycles=1, seed=args.seed, messages=0
    )
    print(
        f"-- {width}x{width} {distribution} ({num_faults} faults, "
        f"{probe.enabled} enabled endpoints)"
    )
    patterns = {
        traffic: bench_pattern(session, traffic, args, run_oracle)
        for traffic in args.patterns
    }
    curve = []
    for load in args.loads:
        start = time.perf_counter()
        stats = session.simulate(
            "mfp",
            traffic="uniform",
            arrival=args.arrival,
            load=load,
            cycles=args.cycles,
            seed=args.seed,
            drain_factor=args.drain_factor,
            sim="array",
        )
        point = point_report(stats)
        point["load"] = load
        point["array_seconds"] = time.perf_counter() - start
        curve.append(point)
        print(
            f"  load {load:7.4f} latency {stats.mean_latency:8.2f} "
            f"(queue {stats.mean_queueing:6.2f}) accepted {stats.accepted_load:7.4f} "
            f"[{'deadlock' if stats.deadlocked else 'saturated' if stats.saturated else 'stable'}]"
        )
    checks = curve_checks(curve)
    print(
        f"  curve: monotone={checks['monotone']} knee_load={checks['knee_load']} "
        f"knee_rising={checks['knee_rising']}"
    )
    return {
        "width": width,
        "num_faults": num_faults,
        "distribution": distribution,
        "enabled": probe.enabled,
        "patterns": patterns,
        "curve": curve,
        **checks,
    }


def compare_reference(payload: dict, reference_path: Path) -> int:
    """Assert fields + fingerprints match the reference (timings ignored)."""
    reference = json.loads(reference_path.read_text())
    mismatches = 0
    compared = 0
    for key, scenario in payload["scenarios"].items():
        expected_scenario = reference.get("scenarios", {}).get(key)
        if expected_scenario is None:
            continue
        for traffic, report in scenario["patterns"].items():
            expected = expected_scenario["patterns"].get(traffic)
            if expected is None:
                continue
            compared += 1
            if (
                report["fields"] != expected["fields"]
                or report["fingerprint"] != expected["fingerprint"]
            ):
                mismatches += 1
                print(f"STATS REGRESSION {key}/{traffic}: {report['fields']} "
                      f"!= reference {expected['fields']}")
        expected_curve = {
            f"{p['load']:g}": p for p in expected_scenario.get("curve", [])
        }
        for point in scenario["curve"]:
            expected = expected_curve.get(f"{point['load']:g}")
            if expected is None:
                continue
            compared += 1
            if (
                point["fields"] != expected["fields"]
                or point["fingerprint"] != expected["fingerprint"]
            ):
                mismatches += 1
                print(f"CURVE REGRESSION {key} @ load {point['load']:g}: "
                      f"{point['fields']} != reference {expected['fields']}")
    print(f"[compared {compared} configurations against {reference_path}]")
    if compared == 0:
        print("WARNING: no overlapping configurations to compare")
    return mismatches


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--widths", type=int, nargs="+", default=[16, 32],
        help="square mesh widths to sweep",
    )
    parser.add_argument(
        "--clustered-faults", type=int, nargs="+", default=None,
        help="clustered fault count per width (aligned with --widths; "
        "default 10 at 16x16, 12 at 32x32, else ~4%% of nodes); every "
        "width also runs fault-free",
    )
    parser.add_argument(
        "--loads", type=float, nargs="+",
        default=[0.01, 0.02, 0.04, 0.08, 0.16],
        help="offered loads of the saturation curve (messages/node/cycle)",
    )
    parser.add_argument(
        "--pattern-load", type=float, default=0.02,
        help="moderate load of the per-pattern differential runs",
    )
    parser.add_argument("--cycles", type=int, default=256)
    parser.add_argument("--drain-factor", type=int, default=8)
    parser.add_argument("--arrival", choices=("poisson", "bursty"), default="poisson")
    parser.add_argument("--seed", type=int, default=7, help="traffic seed")
    parser.add_argument(
        "--scenario-seed", type=int, default=1, help="fault-pattern seed"
    )
    parser.add_argument(
        "--oracle-width", type=int, default=16,
        help="run the scalar oracle (and the bit-identity check) on meshes "
        "up to this width",
    )
    parser.add_argument(
        "--patterns", nargs="+", default=None,
        help="spatial traffic registry keys (default: the whole suite)",
    )
    parser.add_argument(
        "--require-knee", action="store_true",
        help="fail unless every curve is monotone and at least one "
        "clustered scenario crosses a rising throughput knee",
    )
    parser.add_argument(
        "--compare", type=Path, default=None,
        help="reference JSON whose fields/fingerprints this run must reproduce",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)
    if args.patterns is None:
        args.patterns = spatial_patterns()
    if args.clustered_faults is None:
        defaults = {16: 10, 32: 12}
        args.clustered_faults = [
            defaults.get(width, max(1, round(0.04 * width * width)))
            for width in args.widths
        ]
    if len(args.clustered_faults) != len(args.widths):
        parser.error("--clustered-faults needs one entry per --widths entry")

    scenarios = {}
    for width, num_faults in zip(args.widths, args.clustered_faults):
        for faults in (0, num_faults):
            key = f"{width}x{width}/{'fault-free' if faults == 0 else 'clustered'}"
            scenarios[key] = bench_scenario(args, width, faults)
    payload = {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "config": {
            "loads": args.loads,
            "pattern_load": args.pattern_load,
            "cycles": args.cycles,
            "drain_factor": args.drain_factor,
            "arrival": args.arrival,
            "seed": args.seed,
            "scenario_seed": args.scenario_seed,
            "construction": "mfp",
            "router": "extended-ecube",
            "simulators": list(simulator_keys()),
        },
        "scenarios": scenarios,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[written to {args.out}]")

    exit_code = 0
    for key, scenario in scenarios.items():
        for traffic, report in scenario["patterns"].items():
            if not report["identical"]:
                print(f"SIMULATOR MISMATCH at {key}/{traffic}: array delivery "
                      "times differ from the scalar oracle")
                exit_code = 1
    if args.require_knee:
        for key, scenario in scenarios.items():
            if not scenario["monotone"]:
                print(f"CURVE NOT MONOTONE at {key}")
                exit_code = 1
        clustered = [s for s in scenarios.values() if s["distribution"] == "clustered"]
        if clustered and not any(s["knee_rising"] for s in clustered):
            print("NO THROUGHPUT KNEE on any clustered scenario")
            exit_code = 1
    if args.compare is not None and compare_reference(payload, args.compare):
        exit_code = 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
