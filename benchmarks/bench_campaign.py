#!/usr/bin/env python
"""Benchmark: the campaign fabric -- resume identity, skip cost, flat RSS.

Three sections, matching the acceptance bar of the campaign subsystem
(ROADMAP item 5, statistical scale):

**resume** -- run one construction campaign twice: uninterrupted, and
interrupted after a handful of tasks (``max_tasks``) then resumed from
the store.  The reduced sweep points of the two runs must be
**bit-identical** (``identical``): the content-addressed store skips
completed trials and the streaming reducer folds rows in (point, trial)
order, so where a trial ran -- first process, resumed process, another
worker -- never shows in the reduction.

**rerun** -- re-run the completed campaign against its own store.  Every
trial key is already present, so the rerun must skip >= 99% of the plan
(``skip_fraction``) and cost ~no trial executions (``executed``).

**rss** -- execute a large campaign (default 100k trials) and a small
one (default 100 trials) in fresh subprocesses and compare the *parent*
process's peak RSS (``ru_maxrss``).  Workers encode rows to packed
structured arrays and the parent streams bounded chunks straight to
disk, so parent memory must stay flat (``flat``: within 2x) however
many trials the campaign holds -- the ``pool.map``-era parent
materialized every result object instead.

A fourth **reference** record reduces a small fixed campaign to
per-point means and 95% confidence intervals; ``--compare`` checks a
run's reference points against a previously committed
``BENCH_campaign.json`` bit-for-bit (the CI stats guard -- trials are
deterministic, so the folded moments are too).

With ``--artifact-dir`` the large RSS run doubles as the committed
campaign artifact build: its manifest and reduced points (with CIs) are
copied/written there (chunk payloads stay out of git; the manifest
records their hashes and row counts).

Usage::

    PYTHONPATH=src python benchmarks/bench_campaign.py                  # full run
    PYTHONPATH=src python benchmarks/bench_campaign.py \\
        --trials 10 --rss-trials 2000 --out /tmp/campaign.json          # CI smoke
    PYTHONPATH=src python benchmarks/bench_campaign.py --trials 10 \\
        --rss-trials 2000 --compare benchmarks/results/BENCH_campaign.json
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

if __package__ in (None, ""):  # allow running straight from a checkout
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

import numpy as np

from repro.campaign import CampaignRunner, CampaignSpec

SCHEMA = "repro.bench_campaign/v1"
DEFAULT_OUT = Path(__file__).parent / "results" / "BENCH_campaign.json"

#: The model set of every benchmark campaign (the paper's core trio).
MODELS = ("fb", "fp", "mfp")


def construction_spec(fault_counts, trials, width, seed):
    return CampaignSpec.construction(
        fault_counts,
        trials,
        models=MODELS,
        width=width,
        base_seed=seed,
        include_rounds=False,
    )


def reduced_record(runner: CampaignRunner) -> list:
    """JSON-ready per-point means and 95% CIs from the streaming fold."""
    return [
        {
            "point": point.point,
            "x": point.x,
            "n": point.n,
            "stats": {
                column: {
                    "mean": moments.mean,
                    "ci95": moments.ci95,
                    "count": moments.count,
                }
                for column, moments in sorted(point.stats.items())
            },
        }
        for point in runner.reduce()
    ]


# -- section 1: interrupted + resumed == uninterrupted -------------------------------


def bench_resume(args) -> dict:
    spec = construction_spec(args.fault_counts, args.trials, args.width, args.seed)
    print(
        f"-- resume: construction campaign, {len(args.fault_counts)} points x "
        f"{args.trials} trials, width {args.width}"
    )
    # Small chunks so the interruption genuinely lands mid-campaign
    # (~40% of the plan dispatched before the cut).
    chunk = max(1, spec.total_trials // 10)
    with tempfile.TemporaryDirectory(prefix="bench-campaign-") as tmp:
        start = time.perf_counter()
        clean = CampaignRunner(spec, Path(tmp) / "clean", chunk_trials=chunk)
        clean_summary = clean.run()
        clean_seconds = time.perf_counter() - start
        clean_points = clean.sweep_points()
        clean_reduced = reduced_record(clean)
        clean.close()

        interrupted = CampaignRunner(
            spec,
            Path(tmp) / "resumed",
            chunk_trials=chunk,
            max_tasks=4,
        )
        partial_summary = interrupted.run()
        interrupted.close()
        resumed = CampaignRunner(None, Path(tmp) / "resumed", chunk_trials=chunk)
        resumed_summary = resumed.run()
        resumed_points = resumed.sweep_points()
        resumed_reduced = reduced_record(resumed)
        resumed.close()

    identical = clean_points == resumed_points and clean_reduced == resumed_reduced
    report = {
        "fingerprint": spec.fingerprint(),
        "planned": clean_summary["planned"],
        "interrupted_after": partial_summary["executed"],
        "resumed_skipped": resumed_summary["skipped"],
        "clean_seconds": clean_seconds,
        "identical": identical,
        "complete": clean_summary["complete"] and resumed_summary["complete"],
    }
    print(
        f"   clean {clean_seconds * 1000:8.2f} ms for "
        f"{clean_summary['planned']} trials   interrupted after "
        f"{partial_summary['executed']}, resume skipped "
        f"{resumed_summary['skipped']}   identical {identical}"
    )
    return report


# -- section 2: reruns are ~free -----------------------------------------------------


def bench_rerun(args) -> dict:
    spec = construction_spec(args.fault_counts, args.trials, args.width, args.seed)
    print(
        f"-- rerun: same campaign against its own completed store"
    )
    with tempfile.TemporaryDirectory(prefix="bench-campaign-") as tmp:
        store = Path(tmp) / "store"
        start = time.perf_counter()
        first = CampaignRunner(spec, store, chunk_trials=args.chunk_trials)
        first_summary = first.run()
        first.close()
        first_seconds = time.perf_counter() - start

        start = time.perf_counter()
        rerun = CampaignRunner(spec, store, chunk_trials=args.chunk_trials)
        rerun_summary = rerun.run()
        rerun.close()
        rerun_seconds = time.perf_counter() - start

    skip_fraction = (
        rerun_summary["skipped"] / rerun_summary["planned"]
        if rerun_summary["planned"]
        else 0.0
    )
    report = {
        "planned": rerun_summary["planned"],
        "first_seconds": first_seconds,
        "rerun_seconds": rerun_seconds,
        "rerun_executed": rerun_summary["executed"],
        "skip_fraction": skip_fraction,
        "speedup": first_seconds / rerun_seconds if rerun_seconds else float("inf"),
    }
    print(
        f"   first {first_seconds * 1000:8.2f} ms   rerun "
        f"{rerun_seconds * 1000:8.2f} ms (executed "
        f"{rerun_summary['executed']}, skipped {skip_fraction * 100:.1f}%)   "
        f"speedup {report['speedup']:6.1f}x"
    )
    return report


# -- section 3: parent RSS stays flat ------------------------------------------------


def run_rss_child(args) -> int:
    """``--rss-child``: run one campaign, print parent-process peak RSS."""
    spec = construction_spec(
        args.fault_counts, args.rss_child_trials, args.width, args.seed
    )
    runner = CampaignRunner(
        spec, args.rss_child_store, chunk_trials=args.chunk_trials
    )
    start = time.perf_counter()
    summary = runner.run()
    elapsed = time.perf_counter() - start
    runner.close()
    # Linux reports ru_maxrss in KiB; workers are separate processes, so
    # this is exactly the streaming parent the flat-RSS claim is about.
    print(
        json.dumps(
            {
                "maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
                "planned": summary["planned"],
                "executed": summary["executed"],
                "complete": summary["complete"],
                "elapsed_seconds": elapsed,
            }
        )
    )
    return 0 if summary["complete"] else 1


def _spawn_rss_child(args, trials: int, store: Path) -> dict:
    command = [
        sys.executable,
        str(Path(__file__).resolve()),
        "--rss-child",
        "--rss-child-trials", str(trials),
        "--rss-child-store", str(store),
        "--width", str(args.width),
        "--seed", str(args.seed),
        "--chunk-trials", str(args.chunk_trials),
        "--fault-counts", *[str(n) for n in args.fault_counts],
    ]
    result = subprocess.run(command, capture_output=True, text=True, check=True)
    return json.loads(result.stdout.splitlines()[-1])


def bench_rss(args, artifact_store: Path | None) -> dict:
    total = args.rss_trials * len(args.fault_counts)
    print(
        f"-- rss: {total} trials vs {args.rss_baseline_trials * len(args.fault_counts)}"
        f" trials, parent peak RSS (fresh subprocess each)"
    )
    with tempfile.TemporaryDirectory(prefix="bench-campaign-rss-") as tmp:
        big_store = artifact_store if artifact_store is not None else Path(tmp) / "big"
        big = _spawn_rss_child(args, args.rss_trials, big_store)
        small = _spawn_rss_child(
            args, args.rss_baseline_trials, Path(tmp) / "small"
        )
    ratio = big["maxrss_kb"] / small["maxrss_kb"] if small["maxrss_kb"] else 0.0
    report = {
        "large_trials": big["planned"],
        "small_trials": small["planned"],
        "large_maxrss_kb": big["maxrss_kb"],
        "small_maxrss_kb": small["maxrss_kb"],
        "large_elapsed_seconds": big["elapsed_seconds"],
        "rss_ratio": ratio,
        "flat": ratio <= 2.0,
        "complete": big["complete"] and small["complete"],
    }
    print(
        f"   {big['planned']} trials: {big['maxrss_kb'] / 1024:7.1f} MiB "
        f"in {big['elapsed_seconds']:.1f}s   {small['planned']} trials: "
        f"{small['maxrss_kb'] / 1024:7.1f} MiB   ratio {ratio:5.2f}x   "
        f"flat {report['flat']}"
    )
    return report


# -- section 4: committed stats reference --------------------------------------------

#: Fixed configuration of the reference campaign the CI stats guard
#: re-runs; changing it invalidates committed references on purpose.
REFERENCE_CONFIG = {
    "fault_counts": [4, 8],
    "trials": 25,
    "width": 12,
    "seed": 7,
}


def bench_reference() -> dict:
    spec = construction_spec(
        REFERENCE_CONFIG["fault_counts"],
        REFERENCE_CONFIG["trials"],
        REFERENCE_CONFIG["width"],
        REFERENCE_CONFIG["seed"],
    )
    print(
        f"-- reference: fixed {len(REFERENCE_CONFIG['fault_counts'])}x"
        f"{REFERENCE_CONFIG['trials']} campaign for the stats guard"
    )
    with tempfile.TemporaryDirectory(prefix="bench-campaign-ref-") as tmp:
        runner = CampaignRunner(spec, Path(tmp) / "store")
        runner.run()
        points = reduced_record(runner)
        runner.close()
    report = {
        "config": dict(REFERENCE_CONFIG),
        "fingerprint": spec.fingerprint(),
        "points": points,
    }
    first = points[0]["stats"]["MFP.disabled_nonfaulty"]
    print(
        f"   fingerprint {spec.fingerprint()[:16]}...   "
        f"MFP.disabled_nonfaulty @ x={points[0]['x']:g}: "
        f"{first['mean']:.3f} +/- {first['ci95']:.3f}"
    )
    return report


# -- artifact ------------------------------------------------------------------------


def write_artifact(args, big_store: Path) -> dict:
    """Copy the manifest + write reduced points of the large campaign."""
    artifact = Path(args.artifact_dir)
    artifact.mkdir(parents=True, exist_ok=True)
    shutil.copyfile(big_store / "manifest.jsonl", artifact / "manifest.jsonl")
    runner = CampaignRunner(None, big_store)
    spec = runner.spec
    reduced = {
        "schema": "repro.campaign.reduced/v1",
        "fingerprint": spec.fingerprint(),
        "spec": spec.canonical(),
        "total_trials": spec.total_trials,
        "points": reduced_record(runner),
    }
    runner.close()
    (artifact / "reduced.json").write_text(json.dumps(reduced, indent=2) + "\n")
    print(
        f"[artifact: manifest + reduced points for {spec.total_trials} trials "
        f"-> {artifact}]"
    )
    return {"dir": str(artifact), "total_trials": spec.total_trials}


# -- guard and entry point -----------------------------------------------------------


def compare_reference(payload: dict, reference_path: Path) -> int:
    """Assert identity/skip/RSS records and reference stats reproduce."""
    reference = json.loads(reference_path.read_text())
    mismatches = 0
    ours_resume, ref_resume = payload.get("resume"), reference.get("resume")
    if ours_resume and ref_resume:
        if not ours_resume["identical"] or not ref_resume["identical"]:
            mismatches += 1
            print("IDENTITY REGRESSION: resumed != uninterrupted")
    ours_rerun, ref_rerun = payload.get("rerun"), reference.get("rerun")
    if ours_rerun and ref_rerun:
        if ours_rerun["skip_fraction"] < 0.99 or ref_rerun["skip_fraction"] < 0.99:
            mismatches += 1
            print("SKIP REGRESSION: rerun executed > 1% of the plan")
    ours_rss, ref_rss = payload.get("rss"), reference.get("rss")
    if ours_rss and ref_rss:
        if not ours_rss["flat"]:
            mismatches += 1
            print(
                f"RSS REGRESSION: parent ratio {ours_rss['rss_ratio']:.2f}x "
                f"exceeds 2x"
            )
    ours_ref, ref_ref = payload.get("reference"), reference.get("reference")
    if ours_ref and ref_ref:
        if ours_ref["config"] != ref_ref["config"]:
            print("WARNING: reference config changed; stats not compared")
        elif ours_ref["fingerprint"] != ref_ref["fingerprint"]:
            mismatches += 1
            print("FINGERPRINT REGRESSION: reference campaign identity moved")
        elif ours_ref["points"] != ref_ref["points"]:
            mismatches += 1
            print("STATS REGRESSION: reference points differ from committed run")
    print(f"[compared against {reference_path}]")
    return mismatches


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--fault-counts", type=int, nargs="+", default=[4, 8, 12, 16],
        help="fault-count axis of every campaign section",
    )
    parser.add_argument(
        "--trials", type=int, default=30,
        help="trials per point of the resume/rerun sections",
    )
    parser.add_argument("--width", type=int, default=16, help="mesh width")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--chunk-trials", type=int, default=500,
        help="trials per dispatched task / stored chunk",
    )
    parser.add_argument(
        "--rss-trials", type=int, default=25_000,
        help="trials per point of the large RSS run "
        "(default 4 points x 25k = 100k trials)",
    )
    parser.add_argument(
        "--rss-baseline-trials", type=int, default=25,
        help="trials per point of the small RSS baseline (100 total)",
    )
    parser.add_argument(
        "--skip-rss", action="store_true",
        help="skip the (slow) RSS section",
    )
    parser.add_argument(
        "--artifact-dir", type=Path, default=None,
        help="also write the large run's manifest + reduced points here "
        "(the committed campaign artifact)",
    )
    parser.add_argument(
        "--compare", type=Path, default=None,
        help="reference JSON whose identity/skip/stats records this run "
        "must reproduce",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    # Internal: the RSS measurement child.
    parser.add_argument("--rss-child", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument(
        "--rss-child-trials", type=int, default=0, help=argparse.SUPPRESS
    )
    parser.add_argument(
        "--rss-child-store", type=Path, default=None, help=argparse.SUPPRESS
    )
    args = parser.parse_args(argv)

    if args.rss_child:
        args.rss_child_trials = args.rss_child_trials or args.trials
        return run_rss_child(args)

    resume = bench_resume(args)
    rerun = bench_rerun(args)
    rss = None
    if not args.skip_rss:
        with tempfile.TemporaryDirectory(prefix="bench-campaign-art-") as tmp:
            big_store = (
                Path(tmp) / "big" if args.artifact_dir is None
                else Path(tmp) / "artifact-store"
            )
            rss = bench_rss(args, big_store)
            artifact = (
                write_artifact(args, big_store)
                if args.artifact_dir is not None
                else None
            )
    else:
        artifact = None
    reference = bench_reference()

    payload = {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "config": {
            "fault_counts": args.fault_counts,
            "trials": args.trials,
            "width": args.width,
            "seed": args.seed,
            "chunk_trials": args.chunk_trials,
            "rss_trials": args.rss_trials,
            "rss_baseline_trials": args.rss_baseline_trials,
            "models": list(MODELS),
        },
        "resume": resume,
        "rerun": rerun,
        "rss": rss,
        "reference": reference,
    }
    if artifact is not None:
        payload["artifact"] = artifact

    failures = 0
    if not resume["identical"]:
        print("FAILURE: resumed campaign is not bit-identical")
        failures += 1
    if rerun["skip_fraction"] < 0.99:
        print("FAILURE: rerun skipped less than 99% of the plan")
        failures += 1
    if rss is not None and not rss["flat"]:
        print("FAILURE: parent RSS grew more than 2x with campaign size")
        failures += 1
    if args.compare is not None:
        failures += compare_reference(payload, args.compare)

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[wrote {args.out}]")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
