#!/usr/bin/env python
"""Benchmark: the array backends against each other on the hot primitives.

Sweeps every measurable backend of :mod:`repro._array_ops` (``numpy``,
``numba`` when installed, the uncompiled ``loops`` reference) over the
three hot workloads the facade dispatches: a 1000x1000 component
labelling + orthogonal-convex-hull round, a 10^6-message batch-routing
run, and a 64x64 open-loop netsim round.  All backends must be
**bit-identical** -- the benchmark refuses to report a speedup (and exits
non-zero) when any backend's results differ from the numpy baseline.

JIT warm-up is excluded by construction: every backend runs each workload
once (compiling numba kernels, priming session caches) before the timed
best-of-``--repeats`` passes.  Backends whose dependencies are missing
(numba/cupy on this machine) are recorded in the payload's
``unavailable`` block instead of being silently re-measured as numpy --
the committed JSON says exactly which implementations actually ran.

The measurements are written as machine-readable JSON (schema
``repro.bench_backends/v1``).  ``--compare`` checks the result fields of
a run against a previously committed reference (timings are
informational only and never compared).

Usage::

    PYTHONPATH=src python benchmarks/bench_backends.py                     # full run
    PYTHONPATH=src python benchmarks/bench_backends.py \\
        --mask-width 128 --messages 5000 --netsim-cycles 32 \\
        --out /tmp/backends.json                                           # CI smoke
    PYTHONPATH=src python benchmarks/bench_backends.py --mask-width 128 \\
        --messages 5000 --netsim-cycles 32 \\
        --compare benchmarks/results/BENCH_backends.json                   # CI guard
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # allow running straight from a checkout
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

import numpy as np

from repro import _array_ops
from repro.api import MeshSession
from repro.faults.scenario import generate_scenario

SCHEMA = "repro.bench_backends/v1"
DEFAULT_OUT = Path(__file__).parent / "results" / "BENCH_backends.json"

#: RoutingStats fields that must be bit-identical across backends.
STATS_FIELDS = (
    "attempted",
    "delivered",
    "failed",
    "total_hops",
    "total_detour",
    "minimal_routes",
    "abnormal_routes",
)


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def bench_labelling_hull(args, backends) -> dict:
    """One labelling + hull round over a random ``--mask-width`` sq. mask."""
    rng = np.random.default_rng(args.seed)
    mask = rng.random((args.mask_width, args.mask_width)) < args.fill
    reports = {}
    for key in backends:
        ops = _array_ops.get_backend(key).ops()

        def round_trip(ops=ops):
            labels, count = ops.label_components(mask, 4)
            return labels, count, ops.hull_fixpoint(mask)

        labels, count, hull = round_trip()  # warm-up: JIT compile, caches
        seconds = _best_of(args.repeats, round_trip)
        reports[key] = {
            "effective": ops.key,
            "seconds": seconds,
            "stats": {"components": int(count), "hull_cells": int(hull.sum())},
            "_labels": labels,
            "_hull": hull,
        }
    base = reports["numpy"]
    for report in reports.values():
        report["identical"] = bool(
            np.array_equal(report["_labels"], base["_labels"])
            and np.array_equal(report["_hull"], base["_hull"])
            and report["stats"] == base["stats"]
        )
    for report in reports.values():
        report.pop("_labels")
        report.pop("_hull")
        report["speedup_vs_numpy"] = base["seconds"] / report["seconds"]
    return {
        "label": f"{args.mask_width}x{args.mask_width} labelling + hull fixpoint",
        "backends": reports,
    }


def bench_batch_routing(args, backends) -> dict:
    """One ``--messages``-message batch-routing run on a 100x100 mesh."""
    scenario = generate_scenario(
        num_faults=args.route_faults, width=args.route_width, seed=args.seed
    )
    session = MeshSession.from_scenario(scenario)
    reports = {}
    for key in backends:
        route = dict(
            traffic="uniform",
            messages=args.messages,
            seed=args.seed,
            engine="batch",
            backend=key,
        )
        # Warm-up: compile the backend's kernels and prime the session
        # caches (construction, router, rings, jump tables).
        warm = session.route("mfp", **{**route, "messages": min(args.messages, 1000)})
        seconds = _best_of(args.repeats, lambda: session.route("mfp", **route))
        stats = session.route("mfp", **route)
        reports[key] = {
            "effective": warm.backend,
            "seconds": seconds,
            "messages_per_second": args.messages / seconds,
            "stats": {field: getattr(stats, field) for field in STATS_FIELDS},
        }
    base = reports["numpy"]
    for report in reports.values():
        report["identical"] = report["stats"] == base["stats"]
        report["speedup_vs_numpy"] = base["seconds"] / report["seconds"]
    return {
        "label": (
            f"{args.messages} uniform messages, batch engine, "
            f"{args.route_width}x{args.route_width} mesh, "
            f"{args.route_faults} faults"
        ),
        "backends": reports,
    }


def bench_netsim_round(args, backends) -> dict:
    """One open-loop contention round on a ``--netsim-width`` sq. mesh."""
    scenario = generate_scenario(
        num_faults=args.netsim_faults, width=args.netsim_width, seed=args.seed
    )
    session = MeshSession.from_scenario(scenario)
    reports = {}
    for key in backends:
        simulate = dict(
            load=args.netsim_load,
            cycles=args.netsim_cycles,
            seed=args.seed,
            backend=key,
        )
        warm = session.simulate("mfp", **simulate)  # warm-up (JIT + caches)
        seconds = _best_of(args.repeats, lambda: session.simulate("mfp", **simulate))
        reports[key] = {
            "effective": warm.backend,
            "seconds": seconds,
            "stats": {
                "attempted": warm.attempted,
                "delivered": warm.delivered,
                "total_latency": warm.total_latency,
                "cycles_run": warm.cycles_run,
                "fingerprint": warm.delivery_fingerprint,
            },
        }
    base = reports["numpy"]
    for report in reports.values():
        report["identical"] = report["stats"] == base["stats"]
        report["speedup_vs_numpy"] = base["seconds"] / report["seconds"]
    return {
        "label": (
            f"{args.netsim_width}x{args.netsim_width} netsim round, "
            f"load {args.netsim_load}, {args.netsim_cycles} cycles"
        ),
        "backends": reports,
    }


def compare_reference(payload: dict, reference_path: Path) -> int:
    """Assert result fields match the committed reference (timings ignored)."""
    reference = json.loads(reference_path.read_text())
    mismatches = 0
    compared = 0
    for name, workload in payload["workloads"].items():
        reference_workload = reference.get("workloads", {}).get(name)
        if reference_workload is None:
            continue
        for backend, report in workload["backends"].items():
            expected = reference_workload["backends"].get(backend)
            if expected is None:
                continue
            compared += 1
            if report["stats"] != expected["stats"]:
                mismatches += 1
                print(
                    f"STATS REGRESSION {name}/{backend}: "
                    f"{report['stats']} != reference {expected['stats']}"
                )
    print(f"[compared {compared} configurations against {reference_path}]")
    if compared == 0:
        print("WARNING: no overlapping configurations to compare")
    return mismatches


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--backends", nargs="+", default=None,
        help="backend registry keys to measure (default: every backend "
        "whose own implementation can run here)",
    )
    parser.add_argument("--mask-width", type=int, default=1000)
    parser.add_argument(
        "--fill", type=float, default=0.3, help="mask occupancy fraction"
    )
    parser.add_argument("--messages", type=int, default=1_000_000)
    parser.add_argument("--route-width", type=int, default=100)
    parser.add_argument("--route-faults", type=int, default=400)
    parser.add_argument("--netsim-width", type=int, default=64)
    parser.add_argument("--netsim-faults", type=int, default=120)
    parser.add_argument("--netsim-load", type=float, default=0.05)
    parser.add_argument("--netsim-cycles", type=int, default=128)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--min-numba-speedup", type=float, default=None,
        help="fail unless the numba backend (when measurable) reaches this "
        "speedup over numpy on every workload",
    )
    parser.add_argument(
        "--compare", type=Path, default=None,
        help="reference JSON whose result fields this run must reproduce",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    status = _array_ops.backend_status()
    if args.backends is None:
        # Measure backends that run their own implementation; re-timing a
        # fallen-back backend would just measure numpy twice and lie about
        # the label.
        args.backends = [
            key
            for key in _array_ops.backend_keys()
            if _array_ops.get_backend(key).ops().key == key
        ]
    unavailable = {
        key: {
            "available": False,
            "effective": _array_ops.get_backend(key).ops().key,
        }
        for key in _array_ops.backend_keys()
        if key not in args.backends
    }
    print(f"measuring backends: {', '.join(args.backends)}")
    if unavailable:
        print(f"not measurable here (fall back to numpy): {', '.join(unavailable)}")

    workloads = {}
    for name, bench in (
        ("labelling_hull", bench_labelling_hull),
        ("batch_routing", bench_batch_routing),
        ("netsim_round", bench_netsim_round),
    ):
        workload = bench(args, args.backends)
        workloads[name] = workload
        print(f"-- {name}: {workload['label']}")
        for backend, report in workload["backends"].items():
            print(
                f"{backend:>8} {report['seconds'] * 1000:10.2f} ms   "
                f"vs numpy {report['speedup_vs_numpy']:6.2f}x   "
                f"identical {report['identical']}"
            )

    payload = {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "backend_status": status,
        "measured": list(args.backends),
        "unavailable": unavailable,
        "config": {
            "mask_width": args.mask_width,
            "fill": args.fill,
            "messages": args.messages,
            "route_width": args.route_width,
            "route_faults": args.route_faults,
            "netsim_width": args.netsim_width,
            "netsim_faults": args.netsim_faults,
            "netsim_load": args.netsim_load,
            "netsim_cycles": args.netsim_cycles,
            "seed": args.seed,
            "repeats": args.repeats,
        },
        "workloads": workloads,
    }
    if not status.get("numba", False):
        payload["notes"] = (
            "numba is not installed in this environment: the numba backend "
            "falls back to the numpy ops and cannot be measured; the loops "
            "timings show the exact kernels numba would JIT, interpreted."
        )
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[written to {args.out}]")

    exit_code = 0
    for name, workload in workloads.items():
        for backend, report in workload["backends"].items():
            if not report["identical"]:
                print(
                    f"BACKEND MISMATCH at {name}/{backend}: results differ "
                    "from the numpy baseline"
                )
                exit_code = 1
            if (
                args.min_numba_speedup
                and backend == "numba"
                and report["effective"] == "numba"
                and report["speedup_vs_numpy"] < args.min_numba_speedup
            ):
                print(
                    f"SPEEDUP BELOW TARGET at {name}/numba: "
                    f"{report['speedup_vs_numpy']:.2f}x < {args.min_numba_speedup}x"
                )
                exit_code = 1
    if args.compare is not None and compare_reference(payload, args.compare):
        exit_code = 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
