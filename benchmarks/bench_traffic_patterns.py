#!/usr/bin/env python
"""Benchmark: the synthetic traffic suite over MFP regions.

Routes one batch of every registered traffic workload (uniform, transpose,
bit reversal, hotspot, nearest neighbour, permutation) over the minimum
faulty polygons of one clustered fault pattern, through the session layer
(``MeshSession.route``), and records per-pattern delivery/detour statistics
plus the batch-generation throughput (the generators are vectorized on the
enabled-node mask, so generation should be microseconds per thousand
messages even on large meshes).

The measurements are written as machine-readable JSON (schema
``repro.bench_traffic/v1``); the CI bench-smoke job runs a tiny-mesh
configuration and archives the file as an artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_traffic_patterns.py            # 100x100 run
    PYTHONPATH=src python benchmarks/bench_traffic_patterns.py \\
        --width 24 --num-faults 40 --messages 200 --out /tmp/traffic.json  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # allow running straight from a checkout
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.api import MeshSession, get_traffic, traffic_keys
from repro.faults.scenario import generate_scenario

SCHEMA = "repro.bench_traffic/v1"
DEFAULT_OUT = Path(__file__).parent / "results" / "BENCH_traffic.json"


def bench_pattern(session: MeshSession, traffic: str, messages: int, seed: int) -> dict:
    """Route one *traffic* batch over the session's MFP regions."""
    context = session.routing.context(construction="mfp")
    spec = get_traffic(traffic)
    start = time.perf_counter()
    batch = spec.generate(context, messages, seed=seed)
    generation_s = time.perf_counter() - start
    # Warm the lazy routing caches (jump tables, ring geometry, packed
    # rings) so the first pattern's timing measures routing, not one-time
    # construction.
    session.route("mfp", traffic=traffic, messages=messages, seed=seed)
    start = time.perf_counter()
    stats = session.route("mfp", traffic=traffic, messages=messages, seed=seed)
    routing_s = time.perf_counter() - start
    report = {
        "label": spec.label,
        "messages": stats.attempted,
        "generated": len(batch),
        "delivery_rate": stats.delivery_rate,
        "mean_hops": stats.mean_hops,
        "mean_detour": stats.mean_detour,
        "abnormal_fraction": stats.abnormal_fraction,
        "generation_seconds": generation_s,
        "routing_seconds": routing_s,
        "messages_per_second": stats.attempted / routing_s if routing_s else 0.0,
        "engine": stats.engine,
        "array_backend": stats.backend,
    }
    print(
        f"{traffic:>18} delivery {stats.delivery_rate:6.3f}   "
        f"hops {stats.mean_hops:6.2f}   detour {stats.mean_detour:5.2f}   "
        f"generate {generation_s * 1e6:8.1f} us   route {routing_s * 1000:8.2f} ms   "
        f"{report['messages_per_second']:10.0f} msg/s [{stats.engine}]"
    )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--width", type=int, default=100, help="square mesh width")
    parser.add_argument("--num-faults", type=int, default=400)
    parser.add_argument("--messages", type=int, default=2000)
    parser.add_argument(
        "--distribution", choices=("random", "clustered"), default="clustered"
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--torus", action="store_true", help="use a torus topology")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    scenario = generate_scenario(
        num_faults=args.num_faults,
        width=args.width,
        model=args.distribution,
        seed=args.seed,
        torus=args.torus,
    )
    session = MeshSession.from_scenario(scenario)
    print(f"scenario: {scenario.describe()}")
    print(f"enabled endpoints (MFP): {session.route('mfp', messages=0).enabled}")

    patterns = {
        traffic: bench_pattern(session, traffic, args.messages, args.seed)
        for traffic in traffic_keys()
    }

    payload = {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "scenario": {
            "width": args.width,
            "num_faults": args.num_faults,
            "distribution": args.distribution,
            "seed": args.seed,
            "torus": args.torus,
            "messages": args.messages,
        },
        "patterns": patterns,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[written to {args.out}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
