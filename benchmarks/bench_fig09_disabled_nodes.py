"""Figure 9: average number of non-faulty but disabled nodes (FB / FP / MFP).

Panel (a) uses the random fault distribution, panel (b) the clustered one.
The benchmark regenerates both panels on the paper's 100x100 mesh over the
0..800 fault sweep, times the sweep, persists the series tables under
``benchmarks/results/`` and checks the qualitative shape reported by the
paper: MFP <= FP <= FB everywhere, with FP re-enabling roughly half and MFP
roughly 90% of the non-faulty nodes the faulty blocks sacrifice.
"""

import pytest

from repro.sim.experiments import run_sweep
from repro.sim.figures import figure9_series, format_series_table

from conftest import WORKERS, record_result


def _run_panel(distribution, fault_counts, trials, mesh_width):
    points = run_sweep(
        fault_counts=fault_counts,
        trials=trials,
        width=mesh_width,
        distribution=distribution,
        include_distributed=False,
        include_rounds=False,
        workers=WORKERS,
    )
    return points


@pytest.mark.parametrize("distribution", ["random", "clustered"])
def test_figure9_panel(benchmark, distribution, fault_counts, trials, mesh_width):
    points = benchmark.pedantic(
        _run_panel,
        args=(distribution, fault_counts, trials, mesh_width),
        rounds=1,
        iterations=1,
    )
    linear = figure9_series(distribution=distribution, points=points, log10=False)
    logged = figure9_series(distribution=distribution, points=points, log10=True)
    record_result(
        f"figure9_{distribution}",
        format_series_table(logged) + "\n\nraw node counts\n" + format_series_table(linear),
    )

    # Shape checks (the paper's qualitative result).
    for index, _ in enumerate(linear.x_values):
        assert (
            linear.series["MFP"][index]
            <= linear.series["FP"][index]
            <= linear.series["FB"][index]
        )
    # Savings at the highest fault count: FP ~50%, MFP ~90% in the paper.
    top = linear.x_values[-1]
    fb = linear.value("FB", top)
    if fb > 0:
        assert 1.0 - linear.value("FP", top) / fb >= 0.35
        assert 1.0 - linear.value("MFP", top) / fb >= 0.75
