"""Ablation: how the constructions scale with the mesh size.

The paper evaluates a single 100x100 mesh; this ablation keeps the fault
*density* constant (4%) and sweeps the mesh size, recording the number of
sacrificed non-faulty nodes and the rounds of the centralized and
distributed minimum-polygon constructions.  Rounds should track component
sizes (roughly constant at fixed density), not the mesh size, which is the
scalability argument for the component-based constructions.
"""


from repro.core.faulty_block import build_faulty_blocks
from repro.core.mfp import build_minimum_polygons
from repro.distributed.dmfp import build_minimum_polygons_distributed
from repro.faults.scenario import generate_scenario

from conftest import record_result

WIDTHS = (40, 70, 100, 130)
DENSITY = 0.04


def _sweep_mesh_size():
    rows = []
    for width in WIDTHS:
        num_faults = int(DENSITY * width * width)
        scenario = generate_scenario(
            num_faults=num_faults, width=width, model="clustered", seed=3
        )
        topology = scenario.topology()
        fb = build_faulty_blocks(scenario.faults, topology=topology)
        mfp = build_minimum_polygons(scenario.faults, topology=topology)
        dmfp = build_minimum_polygons_distributed(scenario.faults, topology=topology)
        rows.append(
            (
                width,
                num_faults,
                fb.num_disabled_nonfaulty,
                mfp.num_disabled_nonfaulty,
                fb.rounds,
                mfp.rounds,
                dmfp.rounds,
            )
        )
    return rows


def test_mesh_size_ablation(benchmark):
    rows = benchmark.pedantic(_sweep_mesh_size, rounds=1, iterations=1)
    lines = [
        f"Mesh-size ablation at {DENSITY:.0%} clustered fault density",
        f"{'width':>6} {'faults':>7} {'FB dis.':>8} {'MFP dis.':>9} "
        f"{'FB rnd':>7} {'CMFP rnd':>9} {'DMFP rnd':>9}",
    ]
    for width, faults, fb_dis, mfp_dis, fb_rounds, cmfp_rounds, dmfp_rounds in rows:
        lines.append(
            f"{width:>6} {faults:>7} {fb_dis:>8} {mfp_dis:>9} "
            f"{fb_rounds:>7} {cmfp_rounds:>9} {dmfp_rounds:>9}"
        )
    record_result("ablation_mesh_size", "\n".join(lines))

    for _, _, fb_dis, mfp_dis, _, cmfp_rounds, dmfp_rounds in rows:
        assert mfp_dis <= fb_dis
        assert cmfp_rounds <= dmfp_rounds
    # CMFP rounds stay roughly flat while the mesh grows 3x (they track the
    # component extent at fixed fault density, not the mesh size).
    assert rows[-1][5] <= rows[0][5] * 4 + 4
