#!/usr/bin/env python
"""The distributed minimum-faulty-polygon construction, step by step.

Walks through Section 3.2 of the paper on two hand-made components and one
generated fault pattern:

1. a U-shaped component (open concave region, Figure 5(a)/(b)): initiator
   election, the clockwise boundary-ring walk, the boundary array entries
   and the notification end nodes it discovers;
2. an O-shaped component (closed concave region, Figure 5(c)): the inner
   ring started by the south-west inner corner of the hole;
3. a clustered fault pattern on a 40x40 mesh: per-component round
   accounting (boundary status + ring + notification) and the comparison
   with the centralized solution.

Run with::

    python examples/distributed_construction.py
"""

from __future__ import annotations

from repro import generate_scenario
from repro.api import MeshSession
from repro.core.components import find_components
from repro.distributed import construct_boundary_ring
from repro.distributed.notification import plan_notifications


def show_component(title, shape) -> None:
    print(title)
    print("=" * len(title))
    component = find_components(shape)[0]
    ring = construct_boundary_ring(component)
    print(f"component nodes       : {sorted(component.nodes)}")
    print(f"candidate initiators  : {ring.candidate_initiators}")
    print(f"elected initiator     : {ring.initiator}")
    print(f"outer ring walk ({len(ring.walk)} hops):")
    print("  " + " -> ".join(str(node) for node in ring.walk))
    for index, hole_walk in enumerate(ring.hole_walks):
        print(f"inner ring {index} ({len(hole_walk)} hops): {hole_walk}")
    print("notification end nodes:")
    for entry in ring.detected:
        section = entry.section
        print(
            f"  {entry.end_node} is in charge of the concave {section.axis} section "
            f"{section.nodes()} (detected at walk step {entry.step})"
        )
    plan = plan_notifications(component, ring)
    print(f"nodes disabled by the notifications: {sorted(plan.disabled_nodes)}")
    print(f"rounds: ring={ring.rounds}  notification={plan.rounds}")
    print()


def network_scale() -> None:
    print("Network-scale distributed construction")
    print("=" * 40)
    scenario = generate_scenario(num_faults=90, width=40, model="clustered", seed=17)
    session = MeshSession.from_scenario(scenario)
    distributed = session.build("dmfp").raw
    centralized = session.build("cmfp").raw
    print(f"scenario: {scenario.describe()}")
    print(f"components: {len(distributed.components)}")
    print(f"non-faulty nodes disabled: {distributed.num_disabled_nonfaulty}")
    print(
        "distributed result equals centralized result:",
        distributed.grid.disabled_set() == centralized.grid.disabled_set(),
    )
    print(f"centralized (CMFP) rounds: {centralized.rounds}")
    print(f"distributed (DMFP) rounds: {distributed.rounds}")
    slowest = max(distributed.per_component, key=lambda entry: entry.rounds)
    print(
        "slowest component: "
        f"{slowest.component.size} faults, ring {slowest.ring.rounds} rounds, "
        f"notification {slowest.plan.rounds} rounds"
    )


def main() -> None:
    u_shape = {(0, 0), (1, 0), (2, 0), (0, 1), (2, 1), (0, 2), (2, 2)}
    o_shape = {
        (0, 0), (1, 0), (2, 0), (3, 0),
        (0, 1), (3, 1),
        (0, 2), (3, 2),
        (0, 3), (1, 3), (2, 3), (3, 3),
    }
    show_component("Open concave region (U-shaped component)", u_shape)
    show_component("Closed concave region (O-shaped component)", o_shape)
    network_scale()


if __name__ == "__main__":
    main()
