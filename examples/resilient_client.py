#!/usr/bin/env python
"""A resilient serving storyline: chaos, retries, crash recovery.

The serving layer's resilience contract is *convergence*: whatever the
transport does -- drops, delays, truncated writes, dead connections,
overload sheds, even a ``kill -9`` of the daemon itself -- a retrying
client settles on the exact same session state and route outcomes a
fault-free run produces.  Bit-identical, witnessed by
:meth:`MeshSession.fingerprint`.

This example walks that contract end to end, over real TCP sockets:

1. bring a journaled daemon up and run a query/mutate workload over a
   **clean** connection -- the oracle run,
2. re-run the identical workload through :class:`ChaosTransport`, a
   seeded fault-injecting proxy dropping and mangling protocol lines,
   with a :class:`RetryPolicy`-driven client -- outcomes and final
   fingerprint must match the oracle exactly,
3. "crash" the daemon (abandon it without a graceful drain) and
   :meth:`RouteDaemon.recover` a fresh one from the journal -- same
   fingerprint again,
4. overload a tiny admission queue and watch ``overloaded`` sheds carry
   ``retry_after`` hints that the retrying client honours.

Run with::

    python examples/resilient_client.py
"""

from __future__ import annotations

import asyncio
import tempfile
from pathlib import Path

from repro import generate_scenario
from repro.serve import (
    ChaosConfig,
    ChaosTransport,
    InProcessClient,
    RetryPolicy,
    RouteDaemon,
    ServeClient,
)

WIDTH = 24
SCENARIO = dict(num_faults=30, width=WIDTH, model="clustered", seed=11)

RETRY = RetryPolicy(
    max_attempts=None,  # retry until the deadline, not a fixed count
    base_delay=0.01,
    max_delay=0.1,
    jitter=0.25,
    seed=5,
    deadline=60.0,
)

CHAOS = ChaosConfig(
    drop_rate=0.15,
    delay_rate=0.2,
    max_delay=0.002,
    partial_write_rate=0.05,
    disconnect_rate=0.05,
    seed=99,
)


async def workload(client) -> list:
    """The deterministic query/mutate mix both runs execute."""
    outcomes = []
    for step in range(40):
        route = await client.route_one((0, 0), (WIDTH - 1, WIDTH - 1))
        outcomes.append((route["delivered"], route["hops"]))
        if step % 7 == 3:
            await client.add_faults([(step % WIDTH, (step * 5) % WIDTH)])
        if step % 11 == 5:
            await client.repair([(step % WIDTH, (step * 5) % WIDTH)])
    return outcomes


async def clean_run() -> tuple:
    daemon = RouteDaemon(scenario=generate_scenario(**SCENARIO), window=0.0005)
    host, port = await daemon.start()
    async with ServeClient(host, port) as client:
        outcomes = await workload(client)
        fingerprint = (await client.status())["fingerprint"]
    await daemon.stop()
    return outcomes, fingerprint


async def chaotic_run(journal: Path) -> tuple:
    daemon = RouteDaemon(
        scenario=generate_scenario(**SCENARIO),
        journal=journal,
        snapshot_every=8,
        window=0.0005,
    )
    host, port = await daemon.start()
    async with ChaosTransport(host, port, CHAOS) as chaos:
        client = ServeClient(*chaos.address, retry=RETRY, timeout=0.25)
        async with client:
            outcomes = await workload(client)
            fingerprint = (await client.status())["fingerprint"]
        injected = dict(chaos.injected)
    # No daemon.stop(): abandon it mid-flight, like a crash.  Every
    # applied mutation is already journaled (flush per record).
    return outcomes, fingerprint, injected


async def overload_demo() -> None:
    daemon = RouteDaemon(
        scenario=generate_scenario(**SCENARIO),
        window=0.001,
        max_batch=10_000,
        max_pending=8,  # absurdly small: force sheds
    )
    client = InProcessClient(daemon)
    sheds = 0

    async def one_request(index: int) -> None:
        nonlocal sheds
        schedule = RETRY.schedule()
        while True:
            response = await client.request(
                {"op": "route", "pairs": [[index % WIDTH, 0, WIDTH - 1, WIDTH - 1]]}
            )
            if response["ok"]:
                return
            sheds += 1
            await asyncio.sleep(
                max(schedule.next_delay(), response["error"]["retry_after"])
            )

    await asyncio.gather(*(one_request(i) for i in range(64)))
    print(
        f"  64 requests through an 8-pair queue: "
        f"{daemon.shed_requests} sheds answered with retry_after, "
        f"all 64 converged through retries"
    )


async def main() -> None:
    print("Resilient serving: chaos, retries, crash recovery")
    print("=" * 66)

    print("\n1. oracle workload over a clean TCP connection")
    clean_outcomes, clean_fp = await clean_run()
    delivered = sum(1 for ok, _ in clean_outcomes if ok)
    print(
        f"  {len(clean_outcomes)} routes, {delivered} delivered, "
        f"fingerprint {clean_fp[:16]}..."
    )

    print("\n2. identical workload through the seeded chaos proxy")
    journal = Path(tempfile.mkdtemp()) / "daemon.journal"
    chaos_outcomes, chaos_fp, injected = await chaotic_run(journal)
    print(
        f"  injected: {injected['drops']} drops, {injected['delays']} delays, "
        f"{injected['partial_writes']} partial writes, "
        f"{injected['disconnects']} disconnects"
    )
    assert chaos_outcomes == clean_outcomes, "outcomes diverged under chaos"
    assert chaos_fp == clean_fp, "fingerprints diverged under chaos"
    print("  route outcomes and fingerprint BIT-IDENTICAL to the clean run")

    print("\n3. recover the crashed daemon from its journal")
    recovered = RouteDaemon.recover(journal)
    print(
        f"  replayed {recovered.recovered['events_replayed']} events on top of "
        f"snapshot v{recovered.recovered['snapshot_version']}"
    )
    assert recovered.session.fingerprint() == clean_fp, "recovery diverged"
    print("  recovered fingerprint BIT-IDENTICAL to the pre-crash session")
    recovered.journal.close()

    print("\n4. overload: admission control sheds, retries converge")
    await overload_demo()

    print("\nall resilience invariants held")


if __name__ == "__main__":
    asyncio.run(main())
