#!/usr/bin/env python
"""A live routing service surviving fault churn, on the in-process client.

The batch pipeline treats every (fault set, construction, router) triple
as a throwaway: construct, route, discard.  ``repro.serve`` instead
keeps the session warm inside an asyncio daemon, coalesces concurrent
route requests into single batch-engine calls, and -- when faults churn
-- transplants engine state (jump tables, packed ring segments) from the
predecessor router instead of rebuilding it.

This example drives :class:`repro.serve.RouteDaemon` through
:class:`repro.serve.InProcessClient` (the exact daemon code path, no
socket) over a small operational storyline:

1. bring the service up on a clustered 40x40 scenario and route a
   steady traffic mix,
2. watch a fault cluster grow node by node -- delivery degrades, the
   ``status`` verb shows versions and delta counters advancing,
3. map two failed *links* onto endpoint node faults and keep serving,
4. repair the cluster and confirm delivery recovers,
5. fire 32 concurrent requests and read the coalescer's merge ratio.

Run with::

    python examples/live_routing_service.py
"""

from __future__ import annotations

import asyncio

from repro import generate_scenario
from repro.serve import InProcessClient, RouteDaemon


def steady_traffic(width: int, count: int, seed: int):
    """A fixed request mix, as a warm service would see tick after tick."""
    import numpy as np

    rng = np.random.default_rng(seed)
    return [
        tuple(int(v) for v in rng.integers(0, width, size=4)) for _ in range(count)
    ]


async def route_and_report(client: InProcessClient, pairs, label: str) -> None:
    response = await client.route(pairs)
    routes = response["routes"]
    delivered = sum(1 for route in routes if route["delivered"])
    hops = [route["hops"] for route in routes if route["delivered"]]
    mean_hops = sum(hops) / len(hops) if hops else 0.0
    print(
        f"  {label:<34} v{response['version']:<3} "
        f"{delivered}/{len(routes)} delivered, mean hops {mean_hops:5.2f}"
    )


async def main() -> None:
    width = 40
    scenario = generate_scenario(
        num_faults=60, width=width, model="clustered", seed=11
    )
    daemon = RouteDaemon(scenario=scenario, construction="mfp", window=0.002)
    client = InProcessClient(daemon)
    pairs = steady_traffic(width, 200, seed=5)

    print("Live routing service under fault churn")
    print("=" * 66)
    status = await client.status()
    mesh = status["mesh"]
    print(
        f"serving {mesh['width']}x{mesh['height']} mesh, "
        f"{mesh['faults']} faults in {mesh['components']} components, "
        f"engine deltas {'on' if status['engine_deltas'] else 'off'}"
    )

    print("\n1. steady traffic on the initial scenario")
    await route_and_report(client, pairs, "baseline")

    print("\n2. a fault cluster grows node by node")
    anchor = (width // 2, width // 2)
    for step in range(4):
        node = (anchor[0] + step % 2, anchor[1] + step // 2)
        await client.add_faults([node])
        await route_and_report(client, pairs, f"after fault at {node}")
    status = await client.status()
    info = status["cache_info"]
    print(
        f"  delta counters: {info['delta_applies']} transplants, "
        f"{info['jump_rebuilds']} jump rebuilds, "
        f"{info['ring_rebuilds']} ring rebuilds"
    )

    print("\n3. two links fail; their endpoints absorb the fault")
    links = [((5, 5), (5, 6)), ((30, 10), (31, 10))]
    payload = await client.add_link_faults(links)
    print(f"  links {links} mapped onto node faults {payload['added']}")
    await route_and_report(client, pairs, "after link faults")

    print("\n4. the cluster is repaired")
    repaired = await client.repair(
        [(anchor[0] + step % 2, anchor[1] + step // 2) for step in range(4)]
    )
    print(f"  removed {repaired['removed']}")
    await route_and_report(client, pairs, "after repair")

    print("\n5. 32 concurrent requests coalesce into batch-engine calls")
    chunks = [pairs[i::32] for i in range(32)]
    await asyncio.gather(*(client.route(chunk) for chunk in chunks))
    stats = (await client.status())["coalescer"]
    print(
        f"  {stats['requests']} requests, {stats['flushes']} engine calls, "
        f"coalesce ratio {stats['coalesce_ratio']:.1f} pairs/flush"
    )

    await client.shutdown()
    print("\ndaemon drained and stopped")


if __name__ == "__main__":
    asyncio.run(main())
