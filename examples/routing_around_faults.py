#!/usr/bin/env python
"""Fault-tolerant routing around orthogonal convex polygons (Section 2.2).

Part 1 replays the paper's Figure 2 example: a message from (1,3) to (6,4)
in a 10x10 mesh with the L-shaped fault polygon {(2,4), (3,4), (4,3)} is
routed around the region counter-clockwise and becomes "normal" again at
(5,2).

Part 2 measures why the fault model matters for the routing layer: the same
clustered fault pattern is turned into FB, FP and MFP regions, the same
random traffic is routed over each, and the number of usable endpoints,
delivery rate and detour overhead are compared.

Run with::

    python examples/routing_around_faults.py
"""

from __future__ import annotations

from repro import ExtendedECubeRouter, Mesh2D, RoutingSimulator, generate_scenario
from repro.api import MeshSession


def figure2_example() -> None:
    print("Figure 2 example: routing from (1,3) to (6,4)")
    print("=" * 50)
    region = {(2, 4), (3, 4), (4, 3)}
    router = ExtendedECubeRouter(Mesh2D(10, 10), [region])
    result = router.route((1, 3), (6, 4))
    print(f"delivered: {result.delivered}")
    print(f"path ({result.hops} hops, {result.abnormal_hops} around the region):")
    print("  " + " -> ".join(str(node) for node in result.path))
    print(f"detour over the fault-free minimum: {result.detour} hops")
    print()


def model_comparison() -> None:
    print("Routing impact of the fault-region model")
    print("=" * 50)
    scenario = generate_scenario(num_faults=120, width=40, model="clustered", seed=5)
    session = MeshSession.from_scenario(scenario)
    constructions = {key: session.build(key) for key in ("fb", "fp", "mfp")}
    print(f"{'model':>5} {'enabled':>8} {'delivery':>9} {'mean hops':>10} {'detour':>7}")
    for construction in constructions.values():
        name = construction.label
        simulator = RoutingSimulator.from_construction(construction, seed=1)
        stats = simulator.run(500)
        print(
            f"{name:>5} {simulator.num_enabled:>8} {stats.delivery_rate:>9.3f} "
            f"{stats.mean_hops:>10.2f} {stats.mean_detour:>7.2f}"
        )
    print()
    print(
        "The minimum faulty polygons keep the most nodes usable as message\n"
        "endpoints while preserving the convexity the router relies on."
    )


def main() -> None:
    figure2_example()
    model_comparison()


if __name__ == "__main__":
    main()
