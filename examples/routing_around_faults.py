#!/usr/bin/env python
"""Fault-tolerant routing around orthogonal convex polygons (Section 2.2).

Part 1 replays the paper's Figure 2 example: a message from (1,3) to (6,4)
in a 10x10 mesh with the L-shaped fault polygon {(2,4), (3,4), (4,3)} is
routed around the region counter-clockwise and becomes "normal" again at
(5,2).

Part 2 measures why the fault model matters for the routing layer: the same
clustered fault pattern is turned into FB, FP and MFP regions, the same
random traffic is routed over each through the session's routing facade
(``session.route``), and the number of usable endpoints, delivery rate and
detour overhead are compared.

Part 3 runs the synthetic traffic suite of the traffic registry (uniform,
transpose, bit reversal, hotspot, nearest neighbour, permutation) over the
MFP regions, comparing the workloads' delivery and detour behaviour.

Run with::

    python examples/routing_around_faults.py
"""

from __future__ import annotations

from repro import ExtendedECubeRouter, Mesh2D, generate_scenario
from repro.api import MeshSession, traffic_keys


def figure2_example() -> None:
    print("Figure 2 example: routing from (1,3) to (6,4)")
    print("=" * 50)
    region = {(2, 4), (3, 4), (4, 3)}
    router = ExtendedECubeRouter(Mesh2D(10, 10), [region])
    result = router.route((1, 3), (6, 4))
    print(f"delivered: {result.delivered}")
    print(f"path ({result.hops} hops, {result.abnormal_hops} around the region):")
    print("  " + " -> ".join(str(node) for node in result.path))
    print(f"detour over the fault-free minimum: {result.detour} hops")
    print()


def model_comparison() -> None:
    print("Routing impact of the fault-region model")
    print("=" * 50)
    scenario = generate_scenario(num_faults=120, width=40, model="clustered", seed=5)
    session = MeshSession.from_scenario(scenario)
    print(f"{'model':>5} {'enabled':>8} {'delivery':>9} {'mean hops':>10} {'detour':>7}")
    for key in ("fb", "fp", "mfp"):
        stats = session.route(key, traffic="uniform", messages=500, seed=1)
        print(
            f"{stats.model:>5} {stats.enabled:>8} {stats.delivery_rate:>9.3f} "
            f"{stats.mean_hops:>10.2f} {stats.mean_detour:>7.2f}"
        )
    print()
    print(
        "The minimum faulty polygons keep the most nodes usable as message\n"
        "endpoints while preserving the convexity the router relies on."
    )
    print()


def traffic_suite() -> None:
    print("Synthetic traffic suite over the MFP regions")
    print("=" * 50)
    scenario = generate_scenario(num_faults=120, width=40, model="clustered", seed=5)
    session = MeshSession.from_scenario(scenario)
    print(f"{'traffic':>18} {'delivery':>9} {'mean hops':>10} {'detour':>7} {'abnormal':>9}")
    for traffic in traffic_keys():
        stats = session.route("mfp", traffic=traffic, messages=500, seed=1)
        print(
            f"{traffic:>18} {stats.delivery_rate:>9.3f} {stats.mean_hops:>10.2f} "
            f"{stats.mean_detour:>7.2f} {stats.abnormal_fraction:>9.3f}"
        )
    print()
    print(
        "Every workload is generated as vectorized index arrays over the\n"
        "enabled-node mask; the same seed reproduces the same batches."
    )


def main() -> None:
    figure2_example()
    model_comparison()
    traffic_suite()


if __name__ == "__main__":
    main()
