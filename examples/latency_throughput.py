#!/usr/bin/env python
"""Latency-throughput evaluation with the contention network simulator.

The paper's statistics (disabled nodes, region sizes, construction rounds)
and the routing ablations are all contention-free: every message is routed
alone.  ``repro.netsim`` adds the missing axis -- open-loop injection at a
configurable offered load, per-virtual-channel contention following the
vc0-vc3 discipline of ``repro.routing.channels``, and per-message latency.

Part 1 sweeps the offered load on a 16x16 mesh, fault-free vs clustered
faults, producing the classic latency-vs-load curve: flat hop-latency
floor, queueing rise, and the throughput knee past which the network
saturates (with faults, the cyclic channel dependencies around the
regions can even deadlock the dense population -- reported as a verdict,
exactly what the static ``check_deadlock`` analysis cannot see).

Part 2 compares arrival processes (Poisson vs bursty on/off) at one load:
burstiness raises queueing at identical long-run rates.

Part 3 shows the differential oracle: the vectorised array simulator and
the scalar reference produce bit-identical delivery times.

Run with::

    python examples/latency_throughput.py
"""

from __future__ import annotations

from repro import generate_scenario
from repro.api import MeshSession


def latency_vs_load() -> None:
    print("Latency vs offered load (16x16, MFP regions, Poisson arrivals)")
    print("=" * 66)
    fault_free = MeshSession(width=16)
    clustered = MeshSession.from_scenario(
        generate_scenario(num_faults=10, width=16, model="clustered", seed=1)
    )
    loads = (0.01, 0.02, 0.04, 0.08, 0.16)
    print(f"{'load':>6} | {'fault-free':>24} | {'10 clustered faults':>24}")
    for load in loads:
        cells = []
        for session in (fault_free, clustered):
            stats = session.simulate("mfp", load=load, cycles=256, seed=7)
            state = (
                "deadlock" if stats.deadlocked
                else "saturated" if stats.saturated else "stable"
            )
            cells.append(f"{stats.mean_latency:8.2f} cyc [{state:>9}]")
        print(f"{load:>6.2f} | {cells[0]:>24} | {cells[1]:>24}")
    print()
    print(
        "The fault-free curve rises smoothly to saturation; around fault\n"
        "regions the dense high-load population can deadlock (the vc0-vc3\n"
        "discipline's dependency graph is cyclic there) -- the simulator\n"
        "reports it as a verdict instead of spinning."
    )
    print()


def arrival_processes() -> None:
    print("Poisson vs bursty arrivals at the same long-run rate")
    print("=" * 66)
    from repro.api import BurstyArrivalOptions

    session = MeshSession(width=16)
    for arrival, options in (
        ("poisson", None),
        ("bursty", BurstyArrivalOptions(burst=16)),
    ):
        stats = session.simulate(
            "mfp", arrival=arrival, load=0.001, cycles=4000, seed=7,
            arrival_options=options,
        )
        print(
            f"{arrival:>8}: latency {stats.mean_latency:6.2f} "
            f"(queueing {stats.mean_queueing:5.2f}), "
            f"accepted {stats.accepted_load:.4f}"
        )
    print()
    print(
        "Identical rate and delivered throughput, but the 16-message\n"
        "bursts collide with each other and queue where the memoryless\n"
        "Poisson stream glides through."
    )
    print()


def differential_oracle() -> None:
    print("Array simulator vs scalar oracle (bit-identity)")
    print("=" * 66)
    session = MeshSession.from_scenario(
        generate_scenario(num_faults=10, width=16, model="clustered", seed=1)
    )
    array = session.simulate("mfp", load=0.05, cycles=128, seed=3, sim="array")
    scalar = session.simulate("mfp", load=0.05, cycles=128, seed=3, sim="scalar")
    print(f"array  fingerprint: {array.delivery_fingerprint}")
    print(f"scalar fingerprint: {scalar.delivery_fingerprint}")
    print(f"identical: {array.delivery_fingerprint == scalar.delivery_fingerprint}")


def main() -> None:
    latency_vs_load()
    arrival_processes()
    differential_oracle()


if __name__ == "__main__":
    main()
