#!/usr/bin/env python
"""Quickstart: build all three fault-region models on one fault pattern.

Opens a :class:`repro.api.MeshSession` on a small mesh, injects a clustered
fault pattern, builds the rectangular faulty blocks (FB), the sub-minimum
faulty polygons (FP) and the minimum faulty polygons (MFP) through the
construction registry, prints an ASCII picture of each result (``#`` =
faulty, ``o`` = non-faulty but disabled) and summarises how many non-faulty
nodes each model sacrifices.  A final incremental step shows the session
only recomputing the fault components touched by new faults.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import generate_scenario
from repro.api import MeshSession, get_construction


def main() -> None:
    scenario = generate_scenario(
        num_faults=30, width=18, model="clustered", seed=11
    )
    session = MeshSession.from_scenario(scenario)
    print(f"Scenario: {scenario.describe()}\n")

    for key in ("fb", "fp", "mfp"):
        spec = get_construction(key)
        title = f"{spec.description} ({spec.label})"
        construction = session.build(key)
        print(title)
        print("-" * len(title))
        print(construction.grid.render())
        print(
            f"regions: {construction.num_regions}   "
            f"non-faulty nodes disabled: {construction.num_disabled_nonfaulty}   "
            f"rounds: {construction.rounds}"
        )
        print()

    fb = session.build("fb")
    mfp = session.build("mfp")
    if fb.num_disabled_nonfaulty:
        saving = 1 - mfp.num_disabled_nonfaulty / fb.num_disabled_nonfaulty
        print(
            f"The minimum faulty polygons re-enable "
            f"{saving:.0%} of the non-faulty nodes the faulty blocks sacrificed."
        )

    # Sequential fault insertion, as in the paper's simulation: the session
    # merges the new faults into the component partition incrementally and
    # reuses the cached polygons of every untouched component.
    session.add_faults([(0, 0), (0, 1), (17, 17)])
    updated = session.build("mfp")
    hits = session.cache_info["component_hits"]
    print(
        f"\nAfter 3 more faults: {updated.num_regions} regions, "
        f"{updated.num_disabled_nonfaulty} non-faulty nodes disabled "
        f"({hits} component-cache hits so far)."
    )


if __name__ == "__main__":
    main()
