#!/usr/bin/env python
"""Quickstart: build all three fault-region models on one fault pattern.

Generates a clustered fault pattern on a small mesh, constructs the
rectangular faulty blocks (FB), the sub-minimum faulty polygons (FP) and
the minimum faulty polygons (MFP), prints an ASCII picture of each result
(``#`` = faulty, ``o`` = non-faulty but disabled) and summarises how many
non-faulty nodes each model sacrifices.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    build_faulty_blocks,
    build_minimum_polygons,
    build_sub_minimum_polygons,
    generate_scenario,
)


def main() -> None:
    scenario = generate_scenario(
        num_faults=30, width=18, model="clustered", seed=11
    )
    topology = scenario.topology()
    print(f"Scenario: {scenario.describe()}\n")

    constructions = {
        "Rectangular faulty blocks (FB)": build_faulty_blocks(
            scenario.faults, topology=topology
        ),
        "Sub-minimum faulty polygons (FP)": build_sub_minimum_polygons(
            scenario.faults, topology=topology
        ),
        "Minimum faulty polygons (MFP)": build_minimum_polygons(
            scenario.faults, topology=topology
        ),
    }

    for title, construction in constructions.items():
        print(title)
        print("-" * len(title))
        print(construction.grid.render())
        print(
            f"regions: {len(construction.regions)}   "
            f"non-faulty nodes disabled: {construction.grid.num_disabled_nonfaulty}   "
            f"rounds: {construction.rounds}"
        )
        print()

    fb = constructions["Rectangular faulty blocks (FB)"]
    mfp = constructions["Minimum faulty polygons (MFP)"]
    if fb.grid.num_disabled_nonfaulty:
        saving = 1 - mfp.grid.num_disabled_nonfaulty / fb.grid.num_disabled_nonfaulty
        print(
            f"The minimum faulty polygons re-enable "
            f"{saving:.0%} of the non-faulty nodes the faulty blocks sacrificed."
        )


if __name__ == "__main__":
    main()
