#!/usr/bin/env python
"""Regenerate the paper's evaluation figures (reduced-scale preview).

Produces the data series behind Figures 9, 10 and 11 for both fault
distributions and prints them as text tables.  By default the sweep uses a
reduced number of trials and fault counts so it finishes in well under a
minute; pass ``--full`` to run the full paper-scale sweep (100x100 mesh,
100..800 faults) as done by the benchmark harness.

Run with::

    python examples/reproduce_figures.py          # quick preview
    python examples/reproduce_figures.py --full   # paper-scale sweep
"""

from __future__ import annotations

import argparse

from repro.api import SweepExecutor
from repro.sim.figures import (
    figure9_series,
    figure10_series,
    figure11_series,
    format_series_table,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the full paper-scale sweep (slower)",
    )
    parser.add_argument("--trials", type=int, default=None, help="trials per point")
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the sweep trials (default: serial)",
    )
    args = parser.parse_args()

    if args.full:
        fault_counts = (100, 200, 300, 400, 500, 600, 700, 800)
        width = 100
        trials = args.trials or 3
    else:
        fault_counts = (50, 100, 200, 300)
        width = 50
        trials = args.trials or 2

    for distribution in ("random", "clustered"):
        print(f"\n### {distribution} fault distribution "
              f"({width}x{width} mesh, {trials} trials per point) ###\n")
        points = SweepExecutor(workers=args.workers).run(
            fault_counts,
            trials,
            width=width,
            distribution=distribution,
            include_rounds=True,
        )
        print(format_series_table(
            figure9_series(distribution=distribution, points=points)))
        print()
        print(format_series_table(
            figure10_series(distribution=distribution, points=points)))
        print()
        print(format_series_table(
            figure11_series(distribution=distribution, points=points)))
        print()


if __name__ == "__main__":
    main()
